package optimize_test

import (
	"fmt"

	"ldcflood/internal/optimize"
)

// Delay-budget provisioning: the lowest duty cycle (longest lifetime)
// whose flooding delay stays within budget, using a synthetic delay model
// delay(duty) = 100 + 10/duty slots.
func ExampleMinDutyForDelayBudget() {
	delay := func(duty float64) (float64, error) {
		return 100 + 10/duty, nil
	}
	p, err := optimize.MinDutyForDelayBudget(optimize.Config{
		TxPerSecond: 0.05, MinDuty: 0.01, MaxDuty: 1,
	}, delay, 300)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("duty %.1f%%, delay %.0f slots\n", p.Duty*100, p.Delay)
	// Output: duty 5.0%, delay 300 slots
}

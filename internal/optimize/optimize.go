// Package optimize implements the paper's first future-work item: "figure
// out how to configure the duty cycle length such that the obtained
// networking gains can be maximized" (Section VI). It searches the duty
// cycle space for the configuration maximizing the networking gain
// (lifetime divided by flooding delay), with either the analytic delay
// predictor of Section IV-B or a simulation-backed evaluator supplying the
// delay curve.
package optimize

import (
	"fmt"
	"math"
	"sort"

	"ldcflood/internal/analysis"
	"ldcflood/internal/metrics"
	"ldcflood/internal/schedule"
)

// DelayFunc returns the expected flooding delay in slots at the given duty
// cycle. Implementations may be analytic (AnalyticDelay) or run the
// simulator (the caller wraps sim.Run).
type DelayFunc func(duty float64) (slots float64, err error)

// Config parameterizes the search.
type Config struct {
	// Energy is the node power model (zero value → DefaultEnergyModel).
	Energy metrics.EnergyModel
	// TxPerSecond is the average per-node transmission rate used in the
	// lifetime computation.
	TxPerSecond float64
	// MinDuty/MaxDuty bracket the search (defaults 0.005 and 1).
	MinDuty, MaxDuty float64
	// Samples is the number of log-spaced duty cycles evaluated before the
	// local refinement (default 24).
	Samples int
	// Refinements is the number of golden-section refinement steps around
	// the best sample (default 20).
	Refinements int
}

func (c *Config) normalize() error {
	if c.Energy == (metrics.EnergyModel{}) {
		c.Energy = metrics.DefaultEnergyModel()
	}
	if c.MinDuty == 0 {
		c.MinDuty = 0.005
	}
	if c.MaxDuty == 0 {
		c.MaxDuty = 1
	}
	if c.MinDuty <= 0 || c.MaxDuty > 1 || c.MinDuty >= c.MaxDuty {
		return fmt.Errorf("optimize: bad duty bracket [%v, %v]", c.MinDuty, c.MaxDuty)
	}
	if c.TxPerSecond < 0 {
		return fmt.Errorf("optimize: negative tx rate")
	}
	if c.Samples <= 1 {
		c.Samples = 24
	}
	if c.Refinements <= 0 {
		c.Refinements = 20
	}
	return nil
}

// Point is one evaluated duty cycle.
type Point struct {
	Duty     float64
	Period   int
	Delay    float64 // slots
	Lifetime float64 // seconds
	Gain     float64 // lifetime / delay(seconds)
}

// Result is the outcome of a search.
type Result struct {
	Best Point
	// Curve holds every coarse sample, ascending in duty, for plotting.
	Curve []Point
}

// Maximize finds the duty cycle with the highest networking gain. The delay
// function is evaluated on a log-spaced grid over [MinDuty, MaxDuty], then
// a golden-section search refines around the best grid point.
func Maximize(cfg Config, delay DelayFunc) (*Result, error) {
	if delay == nil {
		return nil, fmt.Errorf("optimize: nil delay function")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	eval := func(duty float64) (Point, error) {
		slots, err := delay(duty)
		if err != nil {
			return Point{}, fmt.Errorf("optimize: delay at duty %v: %w", duty, err)
		}
		lifetime, _, gain := cfg.Energy.NetworkingGain(duty, slots, cfg.TxPerSecond)
		return Point{
			Duty:     duty,
			Period:   schedule.PeriodForDuty(duty),
			Delay:    slots,
			Lifetime: lifetime,
			Gain:     gain,
		}, nil
	}

	res := &Result{}
	logLo, logHi := math.Log(cfg.MinDuty), math.Log(cfg.MaxDuty)
	bestIdx := 0
	for i := 0; i < cfg.Samples; i++ {
		duty := math.Exp(logLo + (logHi-logLo)*float64(i)/float64(cfg.Samples-1))
		p, err := eval(duty)
		if err != nil {
			return nil, err
		}
		res.Curve = append(res.Curve, p)
		if !math.IsNaN(p.Gain) && p.Gain > res.Curve[bestIdx].Gain {
			bestIdx = i
		}
	}
	sort.Slice(res.Curve, func(i, j int) bool { return res.Curve[i].Duty < res.Curve[j].Duty })
	// Recover bestIdx after sorting (duties are unique by construction).
	best := res.Curve[0]
	for _, p := range res.Curve {
		if !math.IsNaN(p.Gain) && p.Gain > best.Gain {
			best = p
		}
	}

	// Golden-section refinement on the bracket around the best sample.
	lo, hi := cfg.MinDuty, cfg.MaxDuty
	for _, p := range res.Curve {
		if p.Duty < best.Duty {
			lo = p.Duty
		}
		if p.Duty > best.Duty && hi == cfg.MaxDuty {
			hi = p.Duty
		}
	}
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	p1, err := eval(x1)
	if err != nil {
		return nil, err
	}
	p2, err := eval(x2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Refinements; i++ {
		if gainOf(p1) >= gainOf(p2) {
			b, x2, p2 = x2, x1, p1
			x1 = b - invPhi*(b-a)
			if p1, err = eval(x1); err != nil {
				return nil, err
			}
		} else {
			a, x1, p1 = x1, x2, p2
			x2 = a + invPhi*(b-a)
			if p2, err = eval(x2); err != nil {
				return nil, err
			}
		}
	}
	for _, p := range []Point{p1, p2} {
		if !math.IsNaN(p.Gain) && p.Gain > best.Gain {
			best = p
		}
	}
	res.Best = best
	return res, nil
}

func gainOf(p Point) float64 {
	if math.IsNaN(p.Gain) {
		return math.Inf(-1)
	}
	return p.Gain
}

// MinDutyForDelayBudget finds the lowest duty cycle (longest lifetime)
// whose flooding delay stays within budgetSlots — the delay-constrained
// formulation of duty-cycle configuration that the paper's related work
// ([21], [22]/DutyCon) studies and that Section VI calls for. It assumes
// delay is non-increasing in duty (true for every model here) and bisects.
// It returns an error if even MaxDuty cannot meet the budget.
func MinDutyForDelayBudget(cfg Config, delay DelayFunc, budgetSlots float64) (Point, error) {
	if delay == nil {
		return Point{}, fmt.Errorf("optimize: nil delay function")
	}
	if budgetSlots <= 0 {
		return Point{}, fmt.Errorf("optimize: non-positive delay budget")
	}
	if err := cfg.normalize(); err != nil {
		return Point{}, err
	}
	atMax, err := delay(cfg.MaxDuty)
	if err != nil {
		return Point{}, err
	}
	if atMax > budgetSlots {
		return Point{}, fmt.Errorf("optimize: budget %v slots unreachable (delay %v at duty %v)", budgetSlots, atMax, cfg.MaxDuty)
	}
	lo, hi := cfg.MinDuty, cfg.MaxDuty
	if d, err := delay(lo); err != nil {
		return Point{}, err
	} else if d <= budgetSlots {
		hi = lo // even the minimum duty meets the budget
	}
	for i := 0; i < 60 && hi-lo > 1e-9; i++ {
		mid := (lo + hi) / 2
		d, err := delay(mid)
		if err != nil {
			return Point{}, err
		}
		if d <= budgetSlots {
			hi = mid
		} else {
			lo = mid
		}
	}
	slots, err := delay(hi)
	if err != nil {
		return Point{}, err
	}
	lifetime, _, gain := cfg.Energy.NetworkingGain(hi, slots, cfg.TxPerSecond)
	return Point{
		Duty:     hi,
		Period:   schedule.PeriodForDuty(hi),
		Delay:    slots,
		Lifetime: lifetime,
		Gain:     gain,
	}, nil
}

// AnalyticDelay builds a DelayFunc from the Section IV-B predictor plus the
// Theorem 1 multi-packet blocking term: the per-packet delay of flooding M
// packets is approximately the single-packet k-class prediction plus the
// pipeline occupancy (T/2 per queued packet beyond the blocking window).
// n is the sensor count, linkQuality the network mean PRR.
func AnalyticDelay(n int, linkQuality, coverage float64, m int) (DelayFunc, error) {
	if n < 1 {
		return nil, fmt.Errorf("optimize: n = %d", n)
	}
	if linkQuality <= 0 || linkQuality > 1 {
		return nil, fmt.Errorf("optimize: link quality %v outside (0,1]", linkQuality)
	}
	if coverage <= 0 || coverage > 1 {
		return nil, fmt.Errorf("optimize: coverage %v outside (0,1]", coverage)
	}
	if m < 1 {
		return nil, fmt.Errorf("optimize: m = %d", m)
	}
	k := analysis.KClass(linkQuality)
	return func(duty float64) (float64, error) {
		if duty <= 0 || duty > 1 {
			return 0, fmt.Errorf("duty %v outside (0,1]", duty)
		}
		period := schedule.PeriodForDuty(duty)
		single := analysis.PredictedDelay(n, coverage, k, period)
		// Mean queueing contribution over the M packets: packet p waits for
		// min(p, blockingWindow) predecessors at ~k·T/2 each.
		window := float64(analysis.BlockingWindow(n))
		var queue float64
		for p := 0; p < m; p++ {
			w := float64(p)
			if w > window {
				w = window
			}
			queue += w * k * float64(period) / 2
		}
		queue /= float64(m)
		return single + queue, nil
	}, nil
}

package fault

import (
	"math"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/topology"
)

// neverFlips marks a chain state with exit probability 0: the sojourn is
// infinite and the chain is effectively static from then on.
const neverFlips = math.MaxInt64

// linkChain is one link's Gilbert–Elliott state, advanced lazily. Rather
// than stepping the chain every slot, the next state flip is pre-drawn as
// a geometric sojourn length from the link's private stream, so the state
// at slot t costs O(flips), is independent of how often (or on which
// slots) the link is queried, and is identical on the engine's
// slot-by-slot and compact-time paths.
type linkChain struct {
	rng      *rngutil.Stream
	pgb, pbg float64
	scale    float64 // PRR multiplier in the bad state
	bad      bool
	nextFlip int64  // absolute slot of the next state change
	flips    *int64 // the owning Injector's shared flip counter
}

// sojourn returns the number of slots the chain stays in a state whose
// per-slot exit probability is p (support {1, 2, ...}), or neverFlips for
// p = 0.
func (c *linkChain) sojourn(p float64) int64 {
	if p <= 0 {
		return neverFlips
	}
	return 1 + int64(c.rng.Geometric(p))
}

// scaleAt advances the chain to slot t and returns its PRR multiplier.
// Queries must be non-decreasing in t, which the engine guarantees (it
// queries only at the current slot).
func (c *linkChain) scaleAt(t int64) float64 {
	for c.nextFlip <= t {
		at := c.nextFlip
		c.bad = !c.bad
		*c.flips++
		p := c.pgb
		if c.bad {
			p = c.pbg
		}
		// neverFlips is an absolute slot, not a sojourn length: adding it to
		// `at` would overflow int64 and make a one-sided chain (exit
		// probability 0 in the new state) oscillate instead of absorbing.
		if s := c.sojourn(p); s == neverFlips {
			c.nextFlip = neverFlips
		} else {
			c.nextFlip = at + s
		}
	}
	if c.bad {
		return c.scale
	}
	return 1
}

// Event is one compiled churn transition the engine applies at slot At:
// Up = false crashes the node, Up = true reboots it.
type Event struct {
	At   int64
	Node int
	Up   bool
}

// Injector is a Schedule compiled against one topology and one run's fault
// RNG stream. It is owned by a single engine run and is not safe for
// concurrent use; compile a fresh Injector per run.
type Injector struct {
	chains map[uint64]*linkChain
	// static caches Schedule.Dynamic() == false: no events, no jams, and
	// every chain frozen, so link scales are time-invariant.
	static bool
	events []Event
	jams   []compiledJam
	// flips counts Gilbert–Elliott state transitions taken by every
	// governed chain over the run — a plain int64 (the injector is
	// single-run, single-goroutine) that the engine periodically drains
	// into its telemetry registry as fault.chain_flips.
	flips int64
}

// compiledJam is a jam window with its node set resolved to a bitset.
type compiledJam struct {
	from, until int64
	member      []uint64
}

// linkKey canonicalizes an undirected link to a map key.
func linkKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// Compile resolves the schedule against a topology: it selects the
// governed links, draws every chain's initial state from per-link
// sub-streams of rng, resolves jam discs to node sets, and orders the
// churn timeline. The result is deterministic in (schedule, graph, rng
// seed). The caller is expected to have validated the schedule; rng must
// be a stream dedicated to fault injection (the engine derives one from
// the run seed) so fault randomness never aliases other simulation
// streams.
func (s *Schedule) Compile(g *topology.Graph, rng *rngutil.Stream) *Injector {
	inj := &Injector{static: !s.Dynamic()}
	// Link chains: iterate links in canonical order so initial-state draws
	// are independent of adjacency layout; each link draws from its own
	// sub-stream, so the draw order is immaterial anyway.
	for _, e := range g.Links() {
		var rule *LinkRule
		for i := range s.Links {
			if s.Links[i].matches(e.U, e.V, e.PRR) {
				rule = &s.Links[i]
				break
			}
		}
		if rule == nil {
			continue
		}
		key := linkKey(e.U, e.V)
		lr := rng.Sub(key)
		c := &linkChain{
			rng:   lr,
			pgb:   rule.PGB,
			pbg:   rule.PBG,
			scale: rule.BadScale,
			bad:   lr.Bool(rule.StartBad),
			flips: &inj.flips,
		}
		if c.bad {
			c.nextFlip = c.sojourn(c.pbg)
		} else {
			c.nextFlip = c.sojourn(c.pgb)
		}
		if c.bad || c.nextFlip != neverFlips {
			if inj.chains == nil {
				inj.chains = make(map[uint64]*linkChain)
			}
			inj.chains[key] = c
		}
	}
	// Churn timeline, ordered by slot (ties: node, crash before reboot —
	// irrelevant in valid schedules, where intervals cannot touch).
	for _, c := range s.Crashes {
		inj.events = append(inj.events, Event{At: c.At, Node: c.Node, Up: false})
		if c.RebootAt >= 0 {
			inj.events = append(inj.events, Event{At: c.RebootAt, Node: c.Node, Up: true})
		}
	}
	sortEvents(inj.events)
	// Jam node sets.
	words := (g.N() + 63) / 64
	for _, j := range s.Jams {
		cj := compiledJam{from: j.From, until: j.Until, member: make([]uint64, words)}
		for _, v := range j.Nodes {
			cj.member[v>>6] |= 1 << (uint(v) & 63)
		}
		if j.Radius > 0 {
			center := topology.Point{X: j.X, Y: j.Y}
			for v, p := range g.Pos {
				if p.Dist(center) <= j.Radius {
					cj.member[v>>6] |= 1 << (uint(v) & 63)
				}
			}
		}
		inj.jams = append(inj.jams, cj)
	}
	return inj
}

// sortEvents orders the churn timeline by (At, Node, crash-first) with a
// simple insertion sort — fault timelines are tiny.
func sortEvents(ev []Event) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && less(ev[j], ev[j-1]); j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// less orders two churn events.
func less(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return !a.Up && b.Up
}

// Static reports whether the compiled schedule is time-invariant: no
// churn, no jams, and no link chain that can move. Static injectors are
// compatible with the engine's compact-time fast path.
func (in *Injector) Static() bool { return in.static }

// Events returns the compiled churn timeline in slot order. The engine
// applies each event at the top of its slot. The slice is owned by the
// injector.
func (in *Injector) Events() []Event { return in.events }

// LinkScale returns the PRR multiplier of link (u, v) at slot t: 1 for
// ungoverned links or chains in the good state, the rule's BadScale
// otherwise. Queries must be non-decreasing in t.
func (in *Injector) LinkScale(t int64, u, v int) float64 {
	if in.chains == nil {
		return 1
	}
	c, ok := in.chains[linkKey(u, v)]
	if !ok {
		return 1
	}
	return c.scaleAt(t)
}

// Sync advances every link chain to slot t. After Sync(t) returns, LinkScale
// queries at the same t are read-only (the lazy advance in scaleAt has
// nothing left to do), which is what makes them safe from the sharded
// engine's concurrent delivery workers. Chains advance on private per-link
// streams, so the map iteration order here does not affect any draw. Sync
// may advance chains past flips a lazy caller would never have reached
// (links that are never queried), so ChainFlips can read higher under
// Sync-based runs; the flip count is telemetry, not part of simulation
// results, and is still deterministic for a fixed (schedule, graph, seed).
// Calls must be non-decreasing in t, like LinkScale.
func (in *Injector) Sync(t int64) {
	for _, c := range in.chains {
		c.scaleAt(t)
	}
}

// ChainFlips returns how many Gilbert–Elliott state transitions the
// injector's link chains have taken so far. Chains advance lazily, so the
// count covers each chain up to the last slot it was queried at; it is
// monotone over a run. Purely observational — reading it never advances a
// chain.
func (in *Injector) ChainFlips() int64 { return in.flips }

// Jammed reports whether node is inside an active jam region at slot t.
func (in *Injector) Jammed(t int64, node int) bool {
	for i := range in.jams {
		j := &in.jams[i]
		if t >= j.from && t < j.until && j.member[node>>6]&(1<<(uint(node)&63)) != 0 {
			return true
		}
	}
	return false
}

package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Parse decodes a JSON fault spec. The document mirrors Schedule's JSON
// tags; unknown fields are rejected so a typoed key fails loudly instead
// of silently injecting nothing:
//
//	{
//	  "links":   [{"min_prr": 0.2, "max_prr": 0.8,
//	               "pgb": 0.02, "pbg": 0.1, "bad_scale": 0.3}],
//	  "crashes": [{"node": 17, "at": 400, "reboot_at": 900}],
//	  "jams":    [{"from": 200, "until": 260,
//	               "x": 150, "y": 80, "radius": 40}]
//	}
//
// In a crash entry, omitting reboot_at (or giving any negative value)
// means a permanent failure: the node never rejoins.
//
// Parse performs only structural decoding; call Schedule.Validate with the
// target topology for semantic checks (the engine re-validates at run
// time).
func Parse(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Schedule{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("fault: bad spec: %w", err)
	}
	// Trailing garbage after the document is a structural error too.
	if dec.More() {
		return nil, fmt.Errorf("fault: bad spec: trailing data after JSON document")
	}
	return s, nil
}

// UnmarshalJSON decodes one crash entry. An omitted reboot_at defaults to
// -1 (permanent failure) — without the default it would decode to slot 0,
// which Validate always rejects with a misleading "reboots at slot 0"
// error, leaving no way to express permanence by omission. Unknown fields
// are rejected, matching Parse's strictness (custom unmarshalers do not
// inherit the outer decoder's DisallowUnknownFields).
func (c *Crash) UnmarshalJSON(data []byte) error {
	raw := struct {
		Node     int    `json:"node"`
		At       int64  `json:"at"`
		RebootAt *int64 `json:"reboot_at"`
	}{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	c.Node = raw.Node
	c.At = raw.At
	if raw.RebootAt != nil {
		c.RebootAt = *raw.RebootAt
	} else {
		c.RebootAt = -1
	}
	return nil
}

// Load reads and parses a JSON fault spec from a file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(data)
}

// Package fault provides deterministic, scripted fault injection for the
// sim engine: time-varying link degradation, node crash/reboot churn, and
// transient regional outages. A Schedule is a declarative spec — written in
// Go or loaded from a small JSON file — that the engine compiles once per
// run into an Injector whose behavior is a pure function of the run seed
// and the spec, so faulted runs stay bit-for-bit reproducible.
//
// Three fault families are modeled:
//
//   - LinkRule: Gilbert–Elliott bursty links. Each governed link carries a
//     two-state (good/bad) Markov chain with per-slot transition
//     probabilities PGB (good→bad) and PBG (bad→good); in the bad state the
//     link's PRR is multiplied by BadScale. With PGB = PBG = 0 the chain
//     never moves and the rule reduces to the paper's Section IV-B static
//     k-class loss (a fixed PRR down-scaling of a link class).
//   - Crash: node churn. A crashed node's radio is off — it neither wakes,
//     transmits, nor receives — and it loses every buffered packet, so on
//     reboot the flood must re-disseminate to it. The source (node 0) may
//     not crash: injections are application-layer events that the model
//     keeps available.
//   - Jam: a transient regional outage. During [From, Until), every node in
//     the jammed set (an explicit list and/or a disc over node positions)
//     is deafened: transmissions targeting it fail deterministically and it
//     cannot overhear. Senders inside the region still transmit — jamming
//     models receiver-side interference.
//
// Randomness is stream-isolated via rngutil: the engine hands Compile a
// dedicated "fault" sub-stream of the run seed, and every governed link
// derives its own private chain stream from it. Attaching a fault schedule
// therefore never perturbs the engine's loss/sync/protocol streams, and an
// empty Schedule reproduces the unfaulted run exactly.
package fault

import (
	"fmt"

	"ldcflood/internal/topology"
)

// Schedule is a declarative fault-injection spec for one run. The zero
// value injects nothing. A Schedule is immutable data: one instance may be
// shared by many concurrent runs (each run compiles its own Injector).
type Schedule struct {
	// Links lists Gilbert–Elliott degradation rules. The first rule whose
	// selector matches a link governs it; later rules never override
	// earlier ones.
	Links []LinkRule `json:"links,omitempty"`
	// Crashes lists node crash/reboot events.
	Crashes []Crash `json:"crashes,omitempty"`
	// Jams lists transient regional outages.
	Jams []Jam `json:"jams,omitempty"`
}

// LinkRule applies a Gilbert–Elliott two-state chain to a class of links.
// A rule selects its links either by base-PRR class or by explicit pair
// list: with Pairs empty, it governs every link whose base PRR falls inside
// [MinPRR, MaxPRR] (MaxPRR = 0 is interpreted as 1, so the zero selector
// matches every link); with Pairs set, it governs exactly those links and
// the class bounds are ignored. Use two rules to combine the forms.
type LinkRule struct {
	// MinPRR/MaxPRR select the governed link class by base PRR — the
	// paper's k-class partition. MaxPRR = 0 means 1. Ignored when Pairs is
	// non-empty.
	MinPRR float64 `json:"min_prr,omitempty"`
	MaxPRR float64 `json:"max_prr,omitempty"`
	// Pairs selects explicit undirected links [u, v], regardless of their
	// PRR, replacing the class selector.
	Pairs [][2]int `json:"pairs,omitempty"`
	// PGB is the per-slot good→bad transition probability.
	PGB float64 `json:"pgb,omitempty"`
	// PBG is the per-slot bad→good transition probability.
	PBG float64 `json:"pbg,omitempty"`
	// BadScale multiplies the link PRR while the chain is in the bad state;
	// 0 silences the link entirely, 1 makes the bad state harmless.
	BadScale float64 `json:"bad_scale"`
	// StartBad is the probability that the chain starts in the bad state.
	// With PGB = PBG = 0 it selects a static random subset of the class to
	// degrade; 1 degrades the whole class deterministically.
	StartBad float64 `json:"start_bad,omitempty"`
}

// static reports whether the rule's chain never moves after its initial
// state draw.
func (r *LinkRule) static() bool { return r.PGB == 0 && r.PBG == 0 }

// maxPRR returns the selector's upper PRR bound with the 0-means-1 default
// applied.
func (r *LinkRule) maxPRR() float64 {
	if r.MaxPRR == 0 {
		return 1
	}
	return r.MaxPRR
}

// matches reports whether the rule governs the undirected link (u, v) with
// base PRR prr.
func (r *LinkRule) matches(u, v int, prr float64) bool {
	if len(r.Pairs) == 0 {
		return prr >= r.MinPRR && prr <= r.maxPRR()
	}
	for _, p := range r.Pairs {
		if (p[0] == u && p[1] == v) || (p[0] == v && p[1] == u) {
			return true
		}
	}
	return false
}

// Crash schedules one crash (and optional reboot) of a node. While crashed
// the node is dormant on every slot and holds no packets; at RebootAt it
// resumes its periodic working schedule with an empty buffer.
type Crash struct {
	// Node is the crashing node. Node 0 (the source) is not allowed.
	Node int `json:"node"`
	// At is the slot at which the crash takes effect.
	At int64 `json:"at"`
	// RebootAt is the slot at which the node rejoins, or -1 (any negative
	// value) for a permanent failure — the JSON default when reboot_at is
	// omitted.
	RebootAt int64 `json:"reboot_at"`
}

// Jam deafens a region during [From, Until): transmissions to jammed nodes
// fail deterministically (no loss-RNG draw is consumed) and jammed nodes
// cannot overhear. The jammed set is the union of Nodes and, when Radius
// is positive, every node whose position lies within Radius of (X, Y) —
// the disc form requires the graph to carry positions.
type Jam struct {
	// From is the first jammed slot.
	From int64 `json:"from"`
	// Until is the first slot after the outage.
	Until int64 `json:"until"`
	// X/Y/Radius describe the jamming disc in the deployment's coordinate
	// system. Radius 0 disables the disc.
	X      float64 `json:"x,omitempty"`
	Y      float64 `json:"y,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	// Nodes lists explicitly jammed nodes, unioned with the disc.
	Nodes []int `json:"nodes,omitempty"`
}

// Dynamic reports whether the schedule mutates mid-run: any crash, any
// jam, or any link rule whose chain can move. The sim engine's
// compact-time fast path only handles static schedules (pure per-link PRR
// scaling) and silently falls back to the slot-by-slot reference path for
// dynamic ones.
func (s *Schedule) Dynamic() bool {
	if s == nil {
		return false
	}
	if len(s.Crashes) > 0 || len(s.Jams) > 0 {
		return true
	}
	for i := range s.Links {
		if !s.Links[i].static() {
			return true
		}
	}
	return false
}

// Validate checks the schedule against a topology. It returns the first
// problem found, or nil. The sim engine validates the configured schedule
// before every run.
func (s *Schedule) Validate(g *topology.Graph) error {
	if s == nil {
		return nil
	}
	if g == nil {
		return fmt.Errorf("fault: nil graph")
	}
	n := g.N()
	for i, r := range s.Links {
		if r.MinPRR < 0 || r.MinPRR > 1 || r.maxPRR() < r.MinPRR || r.maxPRR() > 1 {
			return fmt.Errorf("fault: link rule %d PRR selector [%v, %v] invalid", i, r.MinPRR, r.maxPRR())
		}
		if r.PGB < 0 || r.PGB >= 1 || r.PBG < 0 || r.PBG >= 1 {
			return fmt.Errorf("fault: link rule %d transition probabilities (%v, %v) outside [0, 1)", i, r.PGB, r.PBG)
		}
		if r.BadScale < 0 || r.BadScale > 1 {
			return fmt.Errorf("fault: link rule %d bad-state scale %v outside [0, 1]", i, r.BadScale)
		}
		if r.StartBad < 0 || r.StartBad > 1 {
			return fmt.Errorf("fault: link rule %d start-bad probability %v outside [0, 1]", i, r.StartBad)
		}
		for _, p := range r.Pairs {
			if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
				return fmt.Errorf("fault: link rule %d pair %v outside [0, %d)", i, p, n)
			}
			if !g.HasLink(p[0], p[1]) {
				return fmt.Errorf("fault: link rule %d pair %v is not a link", i, p)
			}
		}
	}
	// Per-node crash intervals must not overlap: a node cannot crash again
	// before its previous reboot.
	type span struct {
		at, reboot int64
	}
	spans := make(map[int][]span)
	for i, c := range s.Crashes {
		if c.Node <= 0 || c.Node >= n {
			if c.Node == 0 {
				return fmt.Errorf("fault: crash %d targets the source (node 0)", i)
			}
			return fmt.Errorf("fault: crash %d node %d outside [1, %d)", i, c.Node, n)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: crash %d at negative slot %d", i, c.At)
		}
		if c.RebootAt >= 0 && c.RebootAt <= c.At {
			return fmt.Errorf("fault: crash %d reboots at slot %d, not after its crash at %d", i, c.RebootAt, c.At)
		}
		spans[c.Node] = append(spans[c.Node], span{c.At, c.RebootAt})
	}
	for node, ss := range spans {
		for i, a := range ss {
			for _, b := range ss[i+1:] {
				aEnd, bEnd := a.reboot, b.reboot
				overlap := (aEnd < 0 || b.at < aEnd) && (bEnd < 0 || a.at < bEnd)
				if overlap {
					return fmt.Errorf("fault: node %d has overlapping crash intervals", node)
				}
			}
		}
	}
	for i, j := range s.Jams {
		if j.From < 0 || j.Until <= j.From {
			return fmt.Errorf("fault: jam %d window [%d, %d) invalid", i, j.From, j.Until)
		}
		if j.Radius < 0 {
			return fmt.Errorf("fault: jam %d negative radius", i)
		}
		if j.Radius > 0 && g.Pos == nil {
			return fmt.Errorf("fault: jam %d uses a disc but the graph has no positions", i)
		}
		if j.Radius == 0 && len(j.Nodes) == 0 {
			return fmt.Errorf("fault: jam %d selects no nodes (no disc, no list)", i)
		}
		for _, v := range j.Nodes {
			if v < 0 || v >= n {
				return fmt.Errorf("fault: jam %d node %d outside [0, %d)", i, v, n)
			}
		}
	}
	return nil
}

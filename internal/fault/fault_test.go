package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/topology"
)

// line makes a path graph 0-1-2-...-(n-1) with uniform PRR.
func line(n int, prr float64) *topology.Graph {
	g := topology.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddLink(i, i+1, prr)
	}
	return g
}

func TestValidateAcceptsNilAndEmpty(t *testing.T) {
	g := line(4, 0.8)
	var s *Schedule
	if err := s.Validate(g); err != nil {
		t.Fatalf("nil schedule: %v", err)
	}
	if err := (&Schedule{}).Validate(g); err != nil {
		t.Fatalf("empty schedule: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	g := line(6, 0.8)
	cases := []struct {
		name string
		s    Schedule
		want string
	}{
		{"bad prr range", Schedule{Links: []LinkRule{{MinPRR: 0.9, MaxPRR: 0.5}}}, "PRR selector"},
		{"pgb out of range", Schedule{Links: []LinkRule{{PGB: 1.0}}}, "transition probabilities"},
		{"bad scale", Schedule{Links: []LinkRule{{BadScale: 1.5}}}, "bad-state scale"},
		{"start bad", Schedule{Links: []LinkRule{{StartBad: -0.1}}}, "start-bad"},
		{"pair out of range", Schedule{Links: []LinkRule{{Pairs: [][2]int{{0, 9}}}}}, "outside"},
		{"pair non-link", Schedule{Links: []LinkRule{{Pairs: [][2]int{{0, 3}}}}}, "not a link"},
		{"crash source", Schedule{Crashes: []Crash{{Node: 0, At: 5, RebootAt: -1}}}, "source"},
		{"crash out of range", Schedule{Crashes: []Crash{{Node: 6, At: 5, RebootAt: -1}}}, "outside"},
		{"crash negative slot", Schedule{Crashes: []Crash{{Node: 1, At: -1, RebootAt: -1}}}, "negative slot"},
		{"reboot before crash", Schedule{Crashes: []Crash{{Node: 1, At: 5, RebootAt: 5}}}, "not after"},
		{"overlapping crashes", Schedule{Crashes: []Crash{
			{Node: 1, At: 5, RebootAt: 20},
			{Node: 1, At: 10, RebootAt: 30},
		}}, "overlapping"},
		{"overlap with permanent", Schedule{Crashes: []Crash{
			{Node: 1, At: 5, RebootAt: -1},
			{Node: 1, At: 100, RebootAt: 200},
		}}, "overlapping"},
		{"jam empty window", Schedule{Jams: []Jam{{From: 10, Until: 10, Nodes: []int{1}}}}, "window"},
		{"jam negative radius", Schedule{Jams: []Jam{{From: 0, Until: 5, Radius: -1}}}, "negative radius"},
		{"jam disc without positions", Schedule{Jams: []Jam{{From: 0, Until: 5, Radius: 3}}}, "no positions"},
		{"jam selects nothing", Schedule{Jams: []Jam{{From: 0, Until: 5}}}, "selects no nodes"},
		{"jam node out of range", Schedule{Jams: []Jam{{From: 0, Until: 5, Nodes: []int{-1}}}}, "outside"},
	}
	for _, tc := range cases {
		err := tc.s.Validate(g)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAcceptsDisjointCrashIntervals(t *testing.T) {
	g := line(4, 0.8)
	s := Schedule{Crashes: []Crash{
		{Node: 1, At: 5, RebootAt: 20},
		{Node: 1, At: 20, RebootAt: 40}, // touching at the boundary is fine
		{Node: 2, At: 0, RebootAt: -1},
	}}
	if err := s.Validate(g); err != nil {
		t.Fatalf("disjoint intervals rejected: %v", err)
	}
}

func TestDynamic(t *testing.T) {
	var nilSched *Schedule
	if nilSched.Dynamic() {
		t.Error("nil schedule reported dynamic")
	}
	static := &Schedule{Links: []LinkRule{{BadScale: 0.5, StartBad: 1}}}
	if static.Dynamic() {
		t.Error("frozen link rule reported dynamic")
	}
	for name, s := range map[string]*Schedule{
		"moving chain": {Links: []LinkRule{{PGB: 0.01, PBG: 0.1, BadScale: 0.5}}},
		"crash":        {Crashes: []Crash{{Node: 1, At: 5, RebootAt: -1}}},
		"jam":          {Jams: []Jam{{From: 0, Until: 5, Nodes: []int{1}}}},
	} {
		if !s.Dynamic() {
			t.Errorf("%s schedule reported static", name)
		}
	}
}

func TestCompileStaticRule(t *testing.T) {
	g := line(4, 0.8)
	s := &Schedule{Links: []LinkRule{{BadScale: 0.25, StartBad: 1}}}
	inj := s.Compile(g, rngutil.New(7))
	if !inj.Static() {
		t.Fatal("frozen schedule compiled non-static")
	}
	if got := inj.LinkScale(0, 0, 1); got != 0.25 {
		t.Fatalf("LinkScale = %v, want 0.25", got)
	}
	// Static chains never move.
	if got := inj.LinkScale(1_000_000, 0, 1); got != 0.25 {
		t.Fatalf("LinkScale at far slot = %v, want 0.25", got)
	}
}

// TestOneSidedChainAbsorbs covers link rules where exactly one transition
// probability is zero: the chain must absorb into the zero-exit state
// after its first flip and stay there forever, even at far horizons
// (regression test for an int64 overflow that made such chains oscillate).
func TestOneSidedChainAbsorbs(t *testing.T) {
	g := line(3, 0.6)
	const far = int64(1) << 40
	// PGB > 0, PBG = 0: the bad state is absorbing. The chain starts good,
	// flips bad within a few slots (PGB = 0.5), and must stay bad.
	down := &Schedule{Links: []LinkRule{{PGB: 0.5, PBG: 0, BadScale: 0.25}}}
	if err := down.Validate(g); err != nil {
		t.Fatal(err)
	}
	inj := down.Compile(g, rngutil.New(3))
	if got := inj.LinkScale(100, 0, 1); got != 0.25 {
		t.Errorf("permanently-degrading chain at slot 100: scale %v, want 0.25", got)
	}
	if got := inj.LinkScale(far, 0, 1); got != 0.25 {
		t.Errorf("permanently-degrading chain at far slot: scale %v, want 0.25", got)
	}
	// Mirror: PBG > 0, PGB = 0, starting bad — the good state is absorbing.
	up := &Schedule{Links: []LinkRule{{PGB: 0, PBG: 0.5, BadScale: 0.25, StartBad: 1}}}
	if err := up.Validate(g); err != nil {
		t.Fatal(err)
	}
	inj = up.Compile(g, rngutil.New(3))
	if got := inj.LinkScale(100, 0, 1); got != 1 {
		t.Errorf("permanently-recovering chain at slot 100: scale %v, want 1", got)
	}
	if got := inj.LinkScale(far, 0, 1); got != 1 {
		t.Errorf("permanently-recovering chain at far slot: scale %v, want 1", got)
	}
}

func TestCompileSelectorsAndPrecedence(t *testing.T) {
	g := topology.New(4)
	g.AddLink(0, 1, 0.9) // governed only by the pair rule
	g.AddLink(1, 2, 0.3) // in the [0.2, 0.5] class
	g.AddLink(2, 3, 0.7) // ungoverned
	s := &Schedule{Links: []LinkRule{
		{MinPRR: 0.2, MaxPRR: 0.5, BadScale: 0.5, StartBad: 1},
		{Pairs: [][2]int{{1, 0}}, BadScale: 0, StartBad: 1}, // pairs-only: class bounds ignored
	}}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	inj := s.Compile(g, rngutil.New(1))
	if got := inj.LinkScale(0, 1, 2); got != 0.5 {
		t.Errorf("class link scale = %v, want 0.5", got)
	}
	if got := inj.LinkScale(0, 0, 1); got != 0 {
		t.Errorf("pair link scale = %v, want 0 (silenced)", got)
	}
	if got := inj.LinkScale(0, 2, 3); got != 1 {
		t.Errorf("ungoverned link scale = %v, want 1", got)
	}
}

func TestCompileDeterministic(t *testing.T) {
	g := line(10, 0.6)
	s := &Schedule{Links: []LinkRule{{PGB: 0.05, PBG: 0.2, BadScale: 0.3, StartBad: 0.5}}}
	a := s.Compile(g, rngutil.New(42))
	b := s.Compile(g, rngutil.New(42))
	for t64 := int64(0); t64 < 500; t64++ {
		for u := 0; u < 9; u++ {
			if sa, sb := a.LinkScale(t64, u, u+1), b.LinkScale(t64, u, u+1); sa != sb {
				t.Fatalf("slot %d link %d-%d: %v vs %v", t64, u, u+1, sa, sb)
			}
		}
	}
	// A different seed should disagree somewhere over this horizon.
	c := s.Compile(g, rngutil.New(43))
	d := s.Compile(g, rngutil.New(42))
	differs := false
	for t64 := int64(0); t64 < 500 && !differs; t64++ {
		for u := 0; u < 9; u++ {
			if c.LinkScale(t64, u, u+1) != d.LinkScale(t64, u, u+1) {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("seeds 42 and 43 produced identical chain trajectories")
	}
}

// TestChainQueryPatternIndependence is the core compact-path safety
// property: the chain state at slot t must not depend on which earlier
// slots were queried.
func TestChainQueryPatternIndependence(t *testing.T) {
	g := line(3, 0.6)
	s := &Schedule{Links: []LinkRule{{PGB: 0.1, PBG: 0.3, BadScale: 0.2}}}
	dense := s.Compile(g, rngutil.New(9))
	sparse := s.Compile(g, rngutil.New(9))
	var denseAt [1000]float64
	for t64 := int64(0); t64 < 1000; t64++ {
		denseAt[t64] = dense.LinkScale(t64, 0, 1)
	}
	for t64 := int64(17); t64 < 1000; t64 += 97 { // skip most slots
		if got := sparse.LinkScale(t64, 0, 1); got != denseAt[t64] {
			t.Fatalf("slot %d: sparse query %v != dense %v", t64, got, denseAt[t64])
		}
	}
}

func TestCompileEventTimeline(t *testing.T) {
	g := line(5, 0.8)
	s := &Schedule{Crashes: []Crash{
		{Node: 3, At: 100, RebootAt: 200},
		{Node: 1, At: 50, RebootAt: -1},
		{Node: 2, At: 100, RebootAt: 150},
	}}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	inj := s.Compile(g, rngutil.New(0))
	if inj.Static() {
		t.Fatal("churn schedule compiled static")
	}
	ev := inj.Events()
	want := []Event{
		{At: 50, Node: 1, Up: false},
		{At: 100, Node: 2, Up: false},
		{At: 100, Node: 3, Up: false},
		{At: 150, Node: 2, Up: true},
		{At: 200, Node: 3, Up: true},
	}
	if len(ev) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(ev), len(want), ev)
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev[i], want[i])
		}
	}
}

func TestJammedDiscAndList(t *testing.T) {
	g := topology.New(4)
	g.AddLink(0, 1, 0.8)
	g.AddLink(1, 2, 0.8)
	g.AddLink(2, 3, 0.8)
	g.Pos = []topology.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}, {X: 100, Y: 0}}
	s := &Schedule{Jams: []Jam{{From: 10, Until: 20, X: 15, Y: 0, Radius: 6, Nodes: []int{0}}}}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	inj := s.Compile(g, rngutil.New(0))
	// Disc covers nodes 1 (dist 5) and 2 (dist 5); list adds node 0.
	for node, want := range map[int]bool{0: true, 1: true, 2: true, 3: false} {
		if got := inj.Jammed(15, node); got != want {
			t.Errorf("Jammed(15, %d) = %v, want %v", node, got, want)
		}
	}
	// Outside the window nothing is jammed; Until is exclusive.
	if inj.Jammed(9, 1) || inj.Jammed(20, 1) {
		t.Error("jam active outside its [From, Until) window")
	}
	if !inj.Jammed(10, 1) || !inj.Jammed(19, 1) {
		t.Error("jam inactive inside its window")
	}
}

func TestParseJSON(t *testing.T) {
	spec := `{
	  "links":   [{"min_prr": 0.2, "max_prr": 0.8, "pgb": 0.02, "pbg": 0.1, "bad_scale": 0.3}],
	  "crashes": [{"node": 2, "at": 400, "reboot_at": 900}],
	  "jams":    [{"from": 200, "until": 260, "nodes": [1, 3]}]
	}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Links) != 1 || len(s.Crashes) != 1 || len(s.Jams) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Links[0].BadScale != 0.3 || s.Crashes[0].RebootAt != 900 || s.Jams[0].Until != 260 {
		t.Fatalf("field mismatch: %+v", s)
	}
	if !s.Dynamic() {
		t.Error("parsed schedule should be dynamic")
	}
}

func TestParseCrashRebootAtDefaultsToPermanent(t *testing.T) {
	s, err := Parse([]byte(`{"crashes": [{"node": 3, "at": 10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Crashes[0].RebootAt; got != -1 {
		t.Errorf("omitted reboot_at decoded to %d, want -1 (permanent)", got)
	}
	// An explicit value is preserved, including an explicit -1.
	s, err = Parse([]byte(`{"crashes": [{"node": 3, "at": 10, "reboot_at": -1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Crashes[0].RebootAt; got != -1 {
		t.Errorf("explicit reboot_at -1 decoded to %d", got)
	}
}

func TestParseRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := Parse([]byte(`{"crashs": []}`)); err == nil {
		t.Error("typoed key accepted")
	}
	if _, err := Parse([]byte(`{"crashes": [{"node": 3, "at": 10, "rebootat": 5}]}`)); err == nil {
		t.Error("typoed key inside a crash entry accepted")
	}
	if _, err := Parse([]byte(`{} {"links": []}`)); err == nil {
		t.Error("trailing document accepted")
	}
	if _, err := Parse([]byte(`[1, 2]`)); err == nil {
		t.Error("non-object accepted")
	}
}

func TestLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"jams": [{"from": 0, "until": 5, "nodes": [1]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Jams) != 1 {
		t.Fatalf("loaded %+v", s)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestSyncMatchesLazyQueries pins the sharded-engine contract: advancing
// every chain with Sync(t) and then reading LinkScale(t) yields exactly the
// scales a lazy query-as-you-go injector reports, and the post-Sync reads
// leave chain state untouched (repeat reads agree).
func TestSyncMatchesLazyQueries(t *testing.T) {
	g := line(10, 0.6)
	s := &Schedule{Links: []LinkRule{{PGB: 0.08, PBG: 0.25, BadScale: 0.3, StartBad: 0.4}}}
	lazy := s.Compile(g, rngutil.New(11))
	synced := s.Compile(g, rngutil.New(11))
	for t64 := int64(0); t64 < 800; t64 += 13 {
		synced.Sync(t64)
		for u := 0; u < 9; u++ {
			want := lazy.LinkScale(t64, u, u+1)
			if got := synced.LinkScale(t64, u, u+1); got != want {
				t.Fatalf("slot %d link %d-%d: synced %v, lazy %v", t64, u, u+1, got, want)
			}
			if got := synced.LinkScale(t64, u, u+1); got != want {
				t.Fatalf("slot %d link %d-%d: repeat read changed state", t64, u, u+1)
			}
		}
	}
	if synced.ChainFlips() < lazy.ChainFlips() {
		t.Fatalf("Sync advanced fewer flips (%d) than lazy queries (%d)",
			synced.ChainFlips(), lazy.ChainFlips())
	}
}

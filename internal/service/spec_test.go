package service

import (
	"strings"
	"testing"
)

func TestLegacyJournalKey(t *testing.T) {
	const want = "sweep|protocols=opt,of|duties=0.1,0.2|seeds=2|m=5|coverage=0.99|toposeed=1|syncerr=0|compact=false|sharded=false|faults=0"
	cases := []struct {
		name   string
		stored string
		legacy bool
	}{
		{"trailing zeros", "sweep|protocols=opt,of|duties=0.10,0.20|seeds=2|m=5|coverage=0.99|toposeed=1|syncerr=0|compact=false|sharded=false|faults=0", true},
		{"whitespace and zeros", "sweep|protocols=opt,of|duties=0.10, 0.20|seeds=2|m=5|coverage=0.99|toposeed=1|syncerr=0|compact=false|sharded=false|faults=0", true},
		{"identical key", want, false},
		{"different grid", "sweep|protocols=opt,of|duties=0.10,0.20|seeds=3|m=5|coverage=0.99|toposeed=1|syncerr=0|compact=false|sharded=false|faults=0", false},
		{"unparseable duty", "sweep|protocols=opt,of|duties=0.10,zero|seeds=2|m=5|coverage=0.99|toposeed=1|syncerr=0|compact=false|sharded=false|faults=0", false},
		{"no duties segment", "sweep|protocols=opt,of|seeds=2|m=5", false},
		{"unterminated duties", "sweep|protocols=opt,of|duties=0.10,0.20", false},
	}
	for _, tc := range cases {
		if got := LegacyJournalKey(tc.stored, want); got != tc.legacy {
			t.Errorf("%s: LegacyJournalKey = %v, want %v", tc.name, got, tc.legacy)
		}
	}
}

// TestLegacyJournalKeyMatchesCompiledKey ties the detector to the real
// key format: a compiled grid's key with its duty segment rewritten to
// the pre-canonicalization spelling must be recognized as legacy.
func TestLegacyJournalKeyMatchesCompiledKey(t *testing.T) {
	grid, err := Compile(Spec{
		Protocols: []string{"opt"},
		Duties:    []float64{0.1, 0.2},
		Seeds:     1,
		M:         5,
		Coverage:  0.99,
		TopoSeed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := grid.JournalKey()
	const canon = "|duties=0.1,0.2|"
	if !strings.Contains(want, canon) {
		t.Fatalf("compiled key %q lacks canonical duty segment %q", want, canon)
	}
	legacy := strings.Replace(want, canon, "|duties=0.10,0.20|", 1)
	if !LegacyJournalKey(legacy, want) {
		t.Fatalf("legacy spelling of compiled key not detected:\nstored %q\nwant   %q", legacy, want)
	}
}

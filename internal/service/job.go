package service

// The per-job state machine. A Job is created by Submit (or resurrected
// from disk by New), walks queued → running → {done, failed, canceled},
// and fans progress snapshots out to any number of event subscribers
// (the SSE endpoint). An interrupted job — daemon drained or killed
// mid-run — is not a state: it simply re-enters the queue on the next
// startup, and its journal makes the re-run byte-identical.

import (
	"sync"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/telemetry"
)

// State is a job lifecycle state.
type State string

// The job lifecycle: Queued and Running are live; Done, Failed and
// Canceled are terminal and persisted to the job's status.json.
const (
	// StateQueued: accepted, waiting for the scheduler (also the state a
	// mid-run-interrupted job returns to on daemon restart).
	StateQueued State = "queued"
	// StateRunning: the scheduler is executing the job's batch.
	StateRunning State = "running"
	// StateDone: every cell succeeded; the result artifact exists.
	StateDone State = "done"
	// StateFailed: a cell failed terminally (engine error, exhausted
	// retries, per-job timeout); Status.Error names the first failure.
	StateFailed State = "failed"
	// StateCanceled: cancelled by the user via DELETE before finishing.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final (no further transitions).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ProgressView is the JSON shape of a runner.Progress snapshot as served
// by the status and events endpoints.
type ProgressView struct {
	// Done is the number of finished cells, failures included.
	Done int `json:"done"`
	// Failed is the number of cells that ended in a job error.
	Failed int `json:"failed"`
	// Total is the number of cells in the grid.
	Total int `json:"total"`
	// Slots is the simulated slots completed so far.
	Slots int64 `json:"slots"`
	// Elapsed is the wall-clock time since the batch started.
	Elapsed Duration `json:"elapsed"`
	// ETA is the projected time to completion (0 until the first cell
	// lands and after the last).
	ETA Duration `json:"eta"`
	// SlotsPerSec is the simulated-slot throughput so far.
	SlotsPerSec float64 `json:"slots_per_sec"`
}

// progressView converts a runner snapshot to its wire shape.
func progressView(p runner.Progress) ProgressView {
	return ProgressView{
		Done: p.Done, Failed: p.Failed, Total: p.Total, Slots: p.Slots,
		Elapsed: Duration(p.Elapsed), ETA: Duration(p.ETA),
		SlotsPerSec: p.SlotsPerSec,
	}
}

// Status is the JSON document describing one job, served by
// GET /v1/jobs/{id} and as the payload of the terminal SSE event.
type Status struct {
	// ID is the job's server-assigned identifier.
	ID string `json:"id"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Cells is the grid size (protocols × duties × seeds).
	Cells int `json:"cells"`
	// Resumed counts cells served from the job's journal instead of
	// simulated — non-zero after a daemon restart mid-job.
	Resumed int `json:"resumed,omitempty"`
	// Error names the first failure for StateFailed (and the
	// cancellation reason for StateCanceled).
	Error string `json:"error,omitempty"`
	// Created, Started, Finished are lifecycle timestamps (RFC 3339);
	// Started/Finished are zero until reached.
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Progress is the latest batch snapshot; nil before the first cell.
	Progress *ProgressView `json:"progress,omitempty"`
	// Spec is the job's (defaulted) sweep specification.
	Spec Spec `json:"spec"`
}

// Event is one message on a job's event stream. Exactly the SSE wire
// shape: Type is the "event:" line, the marshaled Data the "data:" line.
type Event struct {
	// Type is "progress" for batch snapshots, "done" for the single
	// terminal event (whatever the terminal state is).
	Type string
	// Data is the payload: a ProgressView or, for "done", the final
	// Status.
	Data any
}

// Job is one submitted sweep. All fields are guarded by the owning
// Service's per-job locking discipline: mu for mutable state, the rest
// immutable after construction.
type Job struct {
	// ID is the server-assigned identifier (zero-padded sequence number).
	ID string
	// Registry is the job's private telemetry registry: the runner's
	// runner.* instruments and the engine's sim.*/fault.* counters for
	// this job only. Mounted under /debug/vars as "job.<id>.*".
	Registry *telemetry.Registry

	spec Spec
	dir  string // job state directory: spec.json, journal.jsonl, result.csv, status.json

	mu       sync.Mutex
	state    State
	errText  string
	created  time.Time
	started  time.Time
	finished time.Time
	progress runner.Progress
	hasProg  bool
	resumed  int
	stop     func(error) // cancels the running execution with a cause; non-nil while running
	dist     *distRun    // the distributed lease run, when executing via workers
	canceled bool        // user asked for cancellation (DELETE)
	subs     map[chan Event]struct{}
}

// distributed returns the job's live lease run, or nil when the job is
// not currently executing in distributed mode.
func (j *Job) distributed() *distRun {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dist
}

// stopWith invokes the job's stopper (if running) with the given cause.
func (j *Job) stopWith(cause error) {
	j.mu.Lock()
	stop := j.stop
	j.mu.Unlock()
	if stop != nil {
		stop(cause)
	}
}

// newJob builds a queued job.
func newJob(id, dir string, spec Spec, created time.Time) *Job {
	return &Job{
		ID:       id,
		Registry: telemetry.New(),
		spec:     spec,
		dir:      dir,
		state:    StateQueued,
		created:  created,
		subs:     make(map[chan Event]struct{}),
	}
}

// Status returns the job's current wire-shape snapshot.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked builds the Status document; callers hold j.mu.
func (j *Job) statusLocked() Status {
	st := Status{
		ID:      j.ID,
		State:   j.state,
		Resumed: j.resumed,
		Error:   j.errText,
		Created: j.created,
		Spec:    j.spec,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.hasProg {
		pv := progressView(j.progress)
		st.Progress = &pv
		st.Cells = j.progress.Total
	}
	return st
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Subscribe registers an event listener and returns its channel plus the
// job's current status. The channel is closed when the job reaches a
// terminal state (after the "done" event) or when unsubscribed. Slow
// subscribers lose intermediate progress events rather than blocking the
// batch — the terminal event is never dropped because close follows it
// through the same buffered channel only after a successful send or a
// drain.
func (j *Job) Subscribe() (<-chan Event, Status) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		// Late subscriber: replay the terminal event immediately.
		ch <- Event{Type: "done", Data: j.statusLocked()}
		close(ch)
		return ch, j.statusLocked()
	}
	j.subs[ch] = struct{}{}
	return ch, j.statusLocked()
}

// Unsubscribe removes a listener registered with Subscribe; its channel
// is closed if the job has not already closed it.
func (j *Job) Unsubscribe(ch <-chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for sub := range j.subs {
		if sub == ch {
			delete(j.subs, sub)
			close(sub)
			return
		}
	}
}

// publishLocked fans an event to all subscribers without blocking: a full
// subscriber buffer drops the oldest pending event first, so the newest
// snapshot always lands. Callers hold j.mu.
func (j *Job) publishLocked(ev Event) {
	for sub := range j.subs {
		for {
			select {
			case sub <- ev:
			default:
				select {
				case <-sub: // evict the oldest queued event
				default:
				}
				continue
			}
			break
		}
	}
}

// observe records a batch progress snapshot and fans it out.
func (j *Job) observe(p runner.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = p
	j.hasProg = true
	j.publishLocked(Event{Type: "progress", Data: progressView(p)})
}

// finish moves the job to a terminal state, emits the "done" event, and
// closes every subscriber channel.
func (j *Job) finish(state State, errText string, at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.errText = errText
	j.finished = at
	j.stop = nil
	j.dist = nil
	j.publishLocked(Event{Type: "done", Data: j.statusLocked()})
	for sub := range j.subs {
		delete(j.subs, sub)
		close(sub)
	}
}

package service

// The job scheduler and its on-disk state. One Service owns a bounded
// FIFO queue and a single scheduler goroutine: jobs execute one at a
// time in submission order, each as one internal/runner batch that is
// free to use the whole machine (the spec's Parallel/Workers knobs,
// including the Workers=-1 runner.SplitParallelism mode). Every job
// lives in its own directory —
//
//	<dir>/<id>/spec.json      the submitted spec (+ id, creation time)
//	<dir>/<id>/journal.jsonl  the runner journal, appended as cells finish
//	<dir>/<id>/result.csv     the artifact, written atomically on success
//	<dir>/<id>/status.json    the terminal Status, written exactly once
//
// — which makes the daemon crash-safe by construction: a job with no
// status.json is simply re-queued on the next startup, its journal
// replays the finished cells, and the completed result is byte-identical
// to an uninterrupted run (the runner's journal contract). Draining is
// the deliberate version of the same path: cancel the active batch with
// runner.ErrShutdown, leave no terminal status, exit.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/telemetry"
)

// Submission and lookup failures, mapped to HTTP statuses by the handler
// (429, 503, 404, 409).
var (
	// ErrQueueFull: the bounded queue is at Options.QueueLimit live jobs.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining: the service is shutting down and not accepting jobs.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownJob: no job with that id.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrJobTerminal: the job already reached a terminal state.
	ErrJobTerminal = errors.New("service: job already finished")
)

// errUserCancel is the cancellation cause for DELETE /v1/jobs/{id}; it is
// deliberately not runner.ErrShutdown, so the runner classifies the
// interruption as KindCanceled and the job lands in StateCanceled.
var errUserCancel = errors.New("service: canceled by user")

// errJobWall is the cancellation cause for a per-job wall-clock overrun
// (Options.JobTimeout).
var errJobWall = errors.New("service: job exceeded wall-clock budget")

// Options configures a Service. Dir is required; zero values elsewhere
// mean: queue limit 16, no per-job timeout, a fresh private registry, no
// logging.
type Options struct {
	// Dir is the job state root. Created if missing; a previous daemon's
	// unfinished jobs found here are re-queued and resumed.
	Dir string
	// QueueLimit bounds live (queued + running) jobs; submissions beyond
	// it fail with ErrQueueFull. <= 0 means 16. Jobs resurrected from Dir
	// at startup are exempt — they were admitted once already.
	QueueLimit int
	// JobTimeout is a per-job wall-clock budget covering the whole batch;
	// an overrunning job is cancelled and fails. 0 means no limit. (The
	// per-cell budget is the spec's own Timeout field.)
	JobTimeout time.Duration
	// Telemetry receives the service-level floodd.* instruments
	// (docs/OBSERVABILITY.md has the catalog). Nil means a private
	// registry, still served via the handler's /debug/vars.
	Telemetry *telemetry.Registry
	// Logf, when non-nil, receives one line per lifecycle event
	// (submitted, started, finished, drained).
	Logf func(format string, args ...any)
	// Lease configures the distributed worker-pull protocol
	// (docs/SERVICE.md, "Distributed sweeps"). The zero value disables
	// it: jobs execute as local runner batches exactly as before.
	Lease LeaseOptions
}

// LeaseOptions enables and tunes distributed execution: jobs run as
// leasable chunks that remote floodworker processes pull over HTTP, with
// the daemon's own local executor guaranteeing completion when no worker
// ever connects. All knobs shape wall-clock behavior only — the result
// CSV is byte-identical to a local run by the journal contract.
type LeaseOptions struct {
	// Enabled turns the lease path on for every job this service runs.
	Enabled bool
	// ChunkSize is how many cells one lease carries. <= 0 means 4.
	ChunkSize int
	// TTL is the lease lifetime between heartbeats. <= 0 means 15s.
	TTL time.Duration
	// MaxAttempts is the per-chunk poison threshold (silent expiries plus
	// reported failures). <= 0 means 5.
	MaxAttempts int
	// LocalGrace is the head start remote workers get before the daemon's
	// local executor begins pulling chunks itself. 0 means the local
	// executor competes immediately.
	LocalGrace time.Duration
}

// svcTel is the service's resolved instrument set.
type svcTel struct {
	submitted *telemetry.Counter
	rejected  *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	canceled  *telemetry.Counter
	requeued  *telemetry.Counter
	depth     *telemetry.Gauge
}

// Service is the simulation job scheduler behind cmd/floodd. Create one
// with New, expose it with Handler, stop it with Drain.
type Service struct {
	opts Options
	reg  *telemetry.Registry
	tel  svcTel

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	order    []string // submission order, for listing
	queue    []*Job   // FIFO of queued jobs
	live     int      // queued + running, for the admission bound
	active   *Job     // the job the scheduler is executing, if any
	draining bool
	nextID   int

	schedDone chan struct{}
}

// New opens (or creates) the job root at opts.Dir, re-queues any
// unfinished jobs a previous daemon left behind, and starts the
// scheduler.
func New(opts Options) (*Service, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("service: Options.Dir is required")
	}
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = 16
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	s := &Service{
		opts: opts,
		reg:  reg,
		tel: svcTel{
			submitted: reg.Counter("floodd.jobs.submitted"),
			rejected:  reg.Counter("floodd.jobs.rejected"),
			completed: reg.Counter("floodd.jobs.completed"),
			failed:    reg.Counter("floodd.jobs.failed"),
			canceled:  reg.Counter("floodd.jobs.canceled"),
			requeued:  reg.Counter("floodd.jobs.requeued"),
			depth:     reg.Gauge("floodd.queue.depth"),
		},
		jobs:      make(map[string]*Job),
		nextID:    1,
		schedDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.loadJobs(); err != nil {
		return nil, err
	}
	go s.scheduler()
	return s, nil
}

// jobMeta is the spec.json document: everything needed to resurrect a
// job that has not finished.
type jobMeta struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	Spec    Spec      `json:"spec"`
}

// loadJobs scans Dir for job directories left by a previous daemon:
// terminal jobs (status.json present) are loaded for serving, unfinished
// ones re-enter the queue — their journals make the re-run resume where
// it stopped.
func (s *Service) loadJobs() error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(s.opts.Dir, name)
		var meta jobMeta
		if err := readJSON(filepath.Join(dir, "spec.json"), &meta); err != nil {
			continue // not a job directory; leave it alone
		}
		if meta.ID == "" {
			meta.ID = name
		}
		j := newJob(meta.ID, dir, meta.Spec, meta.Created)
		var st Status
		if err := readJSON(filepath.Join(dir, "status.json"), &st); err == nil && st.State.Terminal() {
			j.state = st.State
			j.errText = st.Error
			j.resumed = st.Resumed
			if st.Started != nil {
				j.started = *st.Started
			}
			if st.Finished != nil {
				j.finished = *st.Finished
			}
			if st.Progress != nil {
				j.progress = runner.Progress{
					Done: st.Progress.Done, Failed: st.Progress.Failed,
					Total: st.Progress.Total, Slots: st.Progress.Slots,
					Elapsed:     time.Duration(st.Progress.Elapsed),
					ETA:         time.Duration(st.Progress.ETA),
					SlotsPerSec: st.Progress.SlotsPerSec,
				}
				j.hasProg = true
			}
		} else {
			j.state = StateQueued
			s.queue = append(s.queue, j)
			s.live++
			s.tel.requeued.Inc()
			s.logf("job %s: requeued for resume", j.ID)
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if n, err := strconv.Atoi(meta.ID); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
	}
	s.tel.depth.Set(int64(len(s.queue)))
	return nil
}

// logf forwards to Options.Logf when set.
func (s *Service) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Registry returns the service-level telemetry registry (the floodd.*
// instruments).
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Submit applies Spec's documented defaults, validates the result by
// compiling it, admits it into the bounded queue, persists it to its own
// directory, and returns the queued Job. It fails with ErrQueueFull at
// the admission bound, ErrDraining during shutdown, or a validation
// error from Compile.
func (s *Service) Submit(spec Spec) (*Job, error) {
	grid, err := Compile(spec.withDefaults())
	if err != nil {
		s.tel.rejected.Inc()
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.tel.rejected.Inc()
		return nil, ErrDraining
	}
	if s.live >= s.opts.QueueLimit {
		s.mu.Unlock()
		s.tel.rejected.Inc()
		return nil, ErrQueueFull
	}
	id := fmt.Sprintf("%06d", s.nextID)
	s.nextID++
	dir := filepath.Join(s.opts.Dir, id)
	// Persist the (defaulted) spec so a daemon restart recompiles the
	// exact grid the client was promised.
	j := newJob(id, dir, grid.Spec, time.Now().UTC())
	if err := os.MkdirAll(dir, 0o755); err == nil {
		err = writeJSON(filepath.Join(dir, "spec.json"), jobMeta{ID: id, Created: j.created, Spec: grid.Spec})
	}
	if err != nil {
		s.mu.Unlock()
		s.tel.rejected.Inc()
		return nil, fmt.Errorf("service: %w", err)
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, j)
	s.live++
	s.tel.submitted.Inc()
	s.tel.depth.Set(int64(len(s.queue)))
	s.cond.Signal()
	s.mu.Unlock()
	s.logf("job %s: submitted (%d cells)", id, len(grid.Cells))
	return j, nil
}

// Job returns the job with the given id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels the job with the given id: a queued job is finalized as
// canceled immediately, a running one has its batch cancelled (with a
// user-cancel cause, so it lands in StateCanceled, not the drain path).
// Cancelling a terminal job fails with ErrJobTerminal.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownJob
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		s.mu.Unlock()
		return ErrJobTerminal
	case j.state == StateQueued:
		j.canceled = true
		j.mu.Unlock()
		inQueue := false
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				inQueue = true
				break
			}
		}
		s.tel.depth.Set(int64(len(s.queue)))
		s.mu.Unlock()
		if inQueue {
			s.settle(j, StateCanceled, errUserCancel.Error())
		}
		// Not in the queue: the scheduler popped it and is about to mark
		// it running. Settling here would race that handoff (a double
		// settle, and a terminal status.json under a job a concurrent
		// drain may yet requeue) — runJob observes j.canceled right after
		// the stopper lands and cancels itself instead.
		return nil
	default: // running
		j.canceled = true
		stop := j.stop
		j.mu.Unlock()
		s.mu.Unlock()
		if stop != nil {
			stop(errUserCancel)
		}
		return nil
	}
}

// Drain stops the service for shutdown: no new submissions are accepted,
// the active batch (if any) is cancelled with runner.ErrShutdown so its
// job stays resumable, queued jobs stay queued on disk, and the
// scheduler goroutine exits. It returns once the scheduler has settled
// or ctx expires. A second Drain is a no-op that still waits.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	act := s.active
	s.cond.Broadcast()
	s.mu.Unlock()
	if act != nil {
		act.stopWith(runner.ErrShutdown)
	}
	select {
	case <-s.schedDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// scheduler is the single job-execution loop: pop, run, repeat, exit on
// drain. Queued jobs left behind at drain are resumed by the next
// daemon's loadJobs.
func (s *Service) scheduler() {
	defer close(s.schedDone)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.draining {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.active = j
		s.tel.depth.Set(int64(len(s.queue)))
		s.mu.Unlock()
		s.runJob(j)
		s.mu.Lock()
		s.active = nil
		s.mu.Unlock()
	}
}

// runJob executes one job — as a local runner batch, or through the
// distributed lease protocol when Options.Lease is enabled — and settles
// its fate.
func (s *Service) runJob(j *Job) {
	grid, err := Compile(j.spec)
	if err != nil {
		s.settle(j, StateFailed, err.Error())
		return
	}
	jrn, err := runner.OpenJournal(filepath.Join(j.dir, "journal.jsonl"), grid.JournalKey(), true)
	if err != nil {
		s.settle(j, StateFailed, err.Error())
		return
	}
	defer jrn.Close()

	if s.opts.Lease.Enabled {
		s.runDistributed(j, grid, jrn)
		return
	}

	ropts := grid.Options()
	ropts.Journal = jrn
	ropts.Telemetry = j.Registry
	ropts.Progress = j.observe
	for i := range grid.Jobs {
		grid.Jobs[i].Telemetry = j.Registry
	}

	ctx := context.Background()
	if s.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.opts.JobTimeout, errJobWall)
		defer cancel()
	}

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.resumed = jrn.Completed()
	batch := runner.Start(ctx, grid.Jobs, ropts)
	j.stop = batch.Cancel
	userCanceled := j.canceled
	j.mu.Unlock()
	s.logf("job %s: running (%d cells, %d journaled)", j.ID, len(grid.Cells), jrn.Completed())

	// Close the drain race: Drain may have set draining between the
	// scheduler popping this job and the stopper landing in j.stop.
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		batch.Cancel(runner.ErrShutdown)
	}
	if userCanceled {
		batch.Cancel(errUserCancel)
	}

	rs, _ := batch.Wait()
	if err := jrn.Err(); err != nil {
		s.logf("job %s: journal degraded: %v", j.ID, err)
	}

	ferr := rs.Err()
	switch {
	case ferr == nil:
		if err := s.writeResult(j, grid, rs); err != nil {
			s.settle(j, StateFailed, err.Error())
			return
		}
		s.settle(j, StateDone, "")
	case errors.Is(ferr, runner.ErrShutdown):
		// Drained mid-run: back to queued, no terminal status on disk —
		// the next daemon re-queues and the journal resumes the batch.
		j.mu.Lock()
		j.state = StateQueued
		j.stop = nil
		j.mu.Unlock()
		s.logf("job %s: interrupted by drain, will resume on restart", j.ID)
	case errors.Is(ferr, errUserCancel):
		s.settle(j, StateCanceled, errUserCancel.Error())
	case errors.Is(ferr, errJobWall):
		s.settle(j, StateFailed, fmt.Sprintf("job exceeded wall-clock budget %v", s.opts.JobTimeout))
	default:
		// Name the first failing cell the way cmd/sweep does.
		msg := ferr.Error()
		for i := range rs {
			if rs[i].Err != nil {
				msg = fmt.Sprintf("%s: %v", grid.Cells[i], rs[i].Err)
				break
			}
		}
		s.settle(j, StateFailed, msg)
	}
}

// writeResult renders the batch CSV atomically into the job directory
// (temp file + rename), so a crash can never leave a torn artifact.
func (s *Service) writeResult(j *Job, grid *Grid, rs runner.Results) error {
	f, err := os.CreateTemp(j.dir, "result-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if err := grid.WriteCSV(f, rs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), j.resultPath())
}

// resultPath is the job's CSV artifact location.
func (j *Job) resultPath() string { return filepath.Join(j.dir, "result.csv") }

// settle finalizes a job into a terminal state, persists status.json,
// updates the service counters, and releases its queue slot.
func (s *Service) settle(j *Job, state State, errText string) {
	j.finish(state, errText, time.Now().UTC())
	if err := writeJSON(filepath.Join(j.dir, "status.json"), j.Status()); err != nil {
		s.logf("job %s: persisting status: %v", j.ID, err)
	}
	s.mu.Lock()
	s.live--
	s.mu.Unlock()
	switch state {
	case StateDone:
		s.tel.completed.Inc()
	case StateFailed:
		s.tel.failed.Inc()
	case StateCanceled:
		s.tel.canceled.Inc()
	}
	if errText == "" {
		s.logf("job %s: %s", j.ID, state)
	} else {
		s.logf("job %s: %s: %s", j.ID, state, errText)
	}
}

// readJSON unmarshals one JSON document from path into v.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// writeJSON marshals v and writes it to path atomically (temp file +
// rename), so a crash mid-write never leaves a torn document.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".json-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

package service_test

// Distributed-mode tests: the lease protocol end to end over real HTTP —
// local-executor fallback, zombie completions provably dropped, daemon
// restart mid-sweep with stale-lease rejection, and chunk poisoning.
// Every success path asserts the final CSV is byte-identical to a plain
// synchronous run: the whole point of the protocol is that worker
// failures are invisible in the artifact.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/service"
)

// distSpec is the grid distributed tests sweep: 8 fast cells.
func distSpec() service.Spec {
	return service.Spec{
		Protocols: []string{"opt"},
		Duties:    []float64{0.10},
		Seeds:     8,
		M:         5,
		Coverage:  0.99,
		TopoSeed:  1,
		Parallel:  2,
	}
}

// testWorker drives the worker side of the lease protocol over HTTP,
// exactly as cmd/floodworker does — but with every step under test
// control, so expiry, zombies, and crashes land deterministically.
type testWorker struct {
	t     *testing.T
	base  string
	jobID string
	grid  *service.Grid
}

func newTestWorker(t *testing.T, base, jobID string, spec service.Spec) *testWorker {
	t.Helper()
	grid, err := service.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorker{t: t, base: base, jobID: jobID, grid: grid}
}

// post sends a JSON body and decodes the JSON reply (if any) into out.
func (w *testWorker) post(path string, in, out any) int {
	w.t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		w.t.Fatal(err)
	}
	resp, err := http.Post(w.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		w.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test helper
	if out != nil && buf.Len() > 0 {
		json.Unmarshal(buf.Bytes(), out) //nolint:errcheck // some replies are error envelopes
	}
	return resp.StatusCode
}

// lease claims one chunk; ok is false when no grant was issued (204/410).
func (w *testWorker) lease(name string) (service.LeaseGrant, int) {
	var grant service.LeaseGrant
	code := w.post("/v1/jobs/"+w.jobID+"/lease", service.LeaseRequest{Worker: name}, &grant)
	return grant, code
}

// simulate runs the granted cells with the shared engine stack and
// packages them as completion outcomes.
func (w *testWorker) simulate(cells []int) []service.CellOutcome {
	w.t.Helper()
	outs := make([]service.CellOutcome, len(cells))
	for i, idx := range cells {
		rs, _ := runner.Run(context.Background(), w.grid.Jobs[idx:idx+1], w.grid.Options())
		if rs[0].Err != nil {
			w.t.Fatalf("cell %d failed: %v", idx, rs[0].Err)
		}
		outs[i] = service.CellOutcome{Index: idx, Res: rs[0].Res}
	}
	return outs
}

// complete reports outcomes for a lease.
func (w *testWorker) complete(leaseID string, outs []service.CellOutcome) (service.CompleteReply, int) {
	var reply service.CompleteReply
	code := w.post("/v1/jobs/"+w.jobID+"/lease/"+leaseID+"/complete",
		service.CompleteRequest{Worker: "test", Key: w.grid.JournalKey(), Results: outs}, &reply)
	return reply, code
}

// drainAll leases and completes chunks until the manager stops granting.
func (w *testWorker) drainAll(name string) {
	w.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		grant, code := w.lease(name)
		switch code {
		case http.StatusOK:
			if _, c := w.complete(grant.Lease, w.simulate(grant.Cells)); c != http.StatusOK {
				w.t.Fatalf("complete chunk %d = %d", grant.Chunk, c)
			}
		case http.StatusNoContent:
			time.Sleep(20 * time.Millisecond)
		case http.StatusGone, http.StatusConflict:
			return // work set settled / job left distributed mode
		default:
			w.t.Fatalf("lease = %d", code)
		}
		if time.Now().After(deadline) {
			w.t.Fatal("drainAll: work never settled")
		}
	}
}

// leaseOpts is the common distributed configuration for tests: small
// chunks, a short TTL so expiry lands fast, and a local-executor grace
// long enough that the test's own workers keep control of the sweep.
func leaseOpts(localGrace time.Duration) service.LeaseOptions {
	return service.LeaseOptions{
		Enabled:    true,
		ChunkSize:  2,
		TTL:        300 * time.Millisecond,
		LocalGrace: localGrace,
	}
}

// TestDistributedLocalFallback: lease mode with zero workers degrades to
// the daemon's local executor and still produces the byte-identical CSV.
func TestDistributedLocalFallback(t *testing.T) {
	want := referenceCSV(t, distSpec())
	dir := t.TempDir()
	s := newService(t, dir, service.Options{Lease: leaseOpts(0)})
	j, err := s.Submit(distSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, s, j.ID, 60*time.Second); st != service.StateDone {
		t.Fatalf("job = %s (%s)", st, j.Status().Error)
	}
	got, err := os.ReadFile(filepath.Join(dir, j.ID, "result.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("local-fallback CSV differs from direct run:\n%s\nvs\n%s", got, want)
	}
	snap := j.Registry.Snapshot()
	if snap["lease.granted"] == 0 || snap["lease.chunks.done"] != 4 {
		t.Fatalf("lease counters: %+v", snap)
	}
}

// TestDistributedZombieDropped is the zombie certification: a worker
// whose lease expired completes anyway — after another worker already
// re-ran the chunk — and every one of its cells is observably dropped,
// never double-counted, with the final CSV still byte-identical.
func TestDistributedZombieDropped(t *testing.T) {
	want := referenceCSV(t, distSpec())
	dir := t.TempDir()
	s := newService(t, dir, service.Options{Lease: leaseOpts(time.Hour)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.Submit(distSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := newTestWorker(t, ts.URL, j.ID, distSpec())

	// Worker A claims a chunk, simulates it, but goes silent past the TTL.
	var grantA service.LeaseGrant
	deadline := time.Now().Add(30 * time.Second)
	for {
		var code int
		grantA, code = w.lease("zombie")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease = %d", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	outsA := w.simulate(grantA.Cells)
	time.Sleep(3 * 300 * time.Millisecond) // well past TTL + requeue backoff

	// Worker B reclaims the forfeited chunk and completes it first.
	var grantB service.LeaseGrant
	deadline = time.Now().Add(30 * time.Second)
	for {
		g, code := w.lease("reclaimer")
		if code == http.StatusOK && g.Chunk == grantA.Chunk {
			grantB = g
			break
		}
		if code == http.StatusOK {
			// Backoff gate not yet open; finish this other chunk normally.
			if _, c := w.complete(g.Lease, w.simulate(g.Cells)); c != http.StatusOK {
				t.Fatalf("complete = %d", c)
			}
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("chunk %d never requeued (last code %d)", grantA.Chunk, code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if fmt.Sprint(grantB.Cells) != fmt.Sprint(grantA.Cells) {
		t.Fatalf("reclaimed cells %v != original %v", grantB.Cells, grantA.Cells)
	}
	if reply, code := w.complete(grantB.Lease, outsA); code != http.StatusOK || reply.Accepted != len(grantA.Cells) {
		t.Fatalf("reclaim complete = %d, %+v", code, reply)
	}

	// The zombie finally reports: every cell must be dropped, none
	// double-counted, and the reply must say so.
	reply, code := w.complete(grantA.Lease, outsA)
	if code != http.StatusOK {
		t.Fatalf("zombie complete = %d", code)
	}
	if !reply.Zombie || reply.Accepted != 0 || reply.Dropped != len(grantA.Cells) {
		t.Fatalf("zombie reply = %+v, want zombie with all %d cells dropped", reply, len(grantA.Cells))
	}

	w.drainAll("finisher")
	if st := waitState(t, s, j.ID, 60*time.Second); st != service.StateDone {
		t.Fatalf("job = %s (%s)", st, j.Status().Error)
	}
	got, err := os.ReadFile(filepath.Join(dir, j.ID, "result.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CSV differs after zombie chaos:\n%s\nvs\n%s", got, want)
	}
	snap := j.Registry.Snapshot()
	if snap["lease.zombie.completions"] < 1 {
		t.Fatalf("lease.zombie.completions = %d, want >= 1", snap["lease.zombie.completions"])
	}
	if snap["lease.cells.duplicate"] != int64(len(grantA.Cells)) {
		t.Fatalf("lease.cells.duplicate = %d, want %d", snap["lease.cells.duplicate"], len(grantA.Cells))
	}
	if snap["lease.expired"] < 1 || snap["lease.requeues"] < 1 {
		t.Fatalf("expiry counters: expired=%d requeues=%d", snap["lease.expired"], snap["lease.requeues"])
	}
}

// TestDistributedRestartResume: workers complete part of a sweep, one
// dies holding a lease, the daemon restarts — and the new daemon rejects
// the dead worker's stale lease (410, zombie-counted), resumes from the
// journal, and finishes byte-identical.
func TestDistributedRestartResume(t *testing.T) {
	want := referenceCSV(t, distSpec())
	dir := t.TempDir()
	s1 := newService(t, dir, service.Options{Lease: leaseOpts(time.Hour)})
	ts1 := httptest.NewServer(s1.Handler())

	j, err := s1.Submit(distSpec())
	if err != nil {
		t.Fatal(err)
	}
	w1 := newTestWorker(t, ts1.URL, j.ID, distSpec())

	// Complete one chunk, then claim a second and "crash" holding it.
	var first, stale service.LeaseGrant
	deadline := time.Now().Add(30 * time.Second)
	for {
		g, code := w1.lease("w1")
		if code == http.StatusOK {
			first = g
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease = %d", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, code := w1.complete(first.Lease, w1.simulate(first.Cells)); code != http.StatusOK {
		t.Fatalf("complete = %d", code)
	}
	if g, code := w1.lease("w1"); code != http.StatusOK {
		t.Fatalf("second lease = %d", code)
	} else {
		stale = g
	}
	staleOuts := w1.simulate(stale.Cells)

	// Daemon restart mid-sweep.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()
	if st := j.State(); st != service.StateQueued {
		t.Fatalf("drained job = %s, want queued", st)
	}

	s2 := newService(t, dir, service.Options{Lease: leaseOpts(2 * time.Second)})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	j2, ok := s2.Job(j.ID)
	if !ok {
		t.Fatalf("job %s not resurrected", j.ID)
	}
	// Wait for the resumed job to start leasing again.
	deadline = time.Now().Add(30 * time.Second)
	for j2.State() != service.StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck in %s", j2.State())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The dead worker's completion arrives at the new daemon: its lease id
	// belongs to the previous incarnation and must be rejected as a zombie
	// (410), not silently accepted.
	w2 := newTestWorker(t, ts2.URL, j.ID, distSpec())
	reply, code := w2.complete(stale.Lease, staleOuts)
	if code != http.StatusGone {
		t.Fatalf("stale complete = %d (%+v), want 410", code, reply)
	}
	if !reply.Zombie {
		t.Fatalf("stale reply = %+v, want Zombie", reply)
	}

	// The local executor (grace elapsed) finishes the remainder.
	if st := waitState(t, s2, j.ID, 120*time.Second); st != service.StateDone {
		t.Fatalf("resumed job = %s (%s)", st, j2.Status().Error)
	}
	got, err := os.ReadFile(filepath.Join(dir, j.ID, "result.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restart-resume CSV differs:\n%s\nvs\n%s", got, want)
	}
	if st := j2.Status(); st.Resumed != len(first.Cells) {
		t.Fatalf("Resumed = %d, want %d (the journaled chunk)", st.Resumed, len(first.Cells))
	}
	if snap := j2.Registry.Snapshot(); snap["lease.zombie.completions"] < 1 {
		t.Fatalf("lease.zombie.completions = %d, want >= 1", snap["lease.zombie.completions"])
	}
}

// TestDistributedPoison: a worker reporting a terminal cell failure
// poisons the chunk immediately and fails the job with the typed error's
// message — no endless reassignment.
func TestDistributedPoison(t *testing.T) {
	s := newService(t, t.TempDir(), service.Options{Lease: leaseOpts(time.Hour)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.Submit(distSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := newTestWorker(t, ts.URL, j.ID, distSpec())
	var grant service.LeaseGrant
	deadline := time.Now().Add(30 * time.Second)
	for {
		g, code := w.lease("poisoner")
		if code == http.StatusOK {
			grant = g
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease = %d", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	outs := []service.CellOutcome{{
		Index: grant.Cells[0], Error: "engine validation failed", Terminal: true,
	}}
	if _, code := w.complete(grant.Lease, outs); code != http.StatusOK {
		t.Fatalf("terminal complete = %d", code)
	}
	if st := waitState(t, s, j.ID, 30*time.Second); st != service.StateFailed {
		t.Fatalf("job = %s, want failed", st)
	}
	if errText := j.Status().Error; !strings.Contains(errText, "poisoned") {
		t.Fatalf("error %q does not name the poisoned chunk", errText)
	}
	if snap := j.Registry.Snapshot(); snap["lease.poisoned"] != 1 {
		t.Fatalf("lease.poisoned = %d, want 1", snap["lease.poisoned"])
	}
}

// TestDistributedKeyMismatch: a completion report carrying the wrong
// journal key (daemon/worker version skew) is rejected with 409 before
// any cell is examined.
func TestDistributedKeyMismatch(t *testing.T) {
	s := newService(t, t.TempDir(), service.Options{Lease: leaseOpts(time.Hour)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.Submit(distSpec())
	if err != nil {
		t.Fatal(err)
	}
	w := newTestWorker(t, ts.URL, j.ID, distSpec())
	var grant service.LeaseGrant
	deadline := time.Now().Add(30 * time.Second)
	for {
		g, code := w.lease("skewed")
		if code == http.StatusOK {
			grant = g
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease = %d", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var reply service.CompleteReply
	code := w.post("/v1/jobs/"+j.ID+"/lease/"+grant.Lease+"/complete",
		service.CompleteRequest{Worker: "skewed", Key: "sweep|something-else", Results: w.simulate(grant.Cells)},
		&reply)
	if code != http.StatusConflict {
		t.Fatalf("mismatched-key complete = %d, want 409", code)
	}
}

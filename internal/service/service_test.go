package service_test

// The service test suite: the httptest end-to-end path (submit → stream
// events → fetch result), the kill-and-restart resume contract
// (byte-identical journal continuation), cancellation semantics, the
// bounded queue, and a concurrent-submission stress run for the race
// detector.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/service"
)

// tinySpec is a grid that finishes in well under a second.
func tinySpec() service.Spec {
	return service.Spec{
		Protocols: []string{"opt"},
		Duties:    []float64{0.10},
		Seeds:     2,
		M:         5,
		Coverage:  0.99,
		TopoSeed:  1,
		Parallel:  2,
	}
}

// slowSpec is a grid that takes on the order of seconds (12 cells at
// ~140ms each, serial batch), so a drain or cancel lands mid-run rather
// than after completion.
func slowSpec() service.Spec {
	return service.Spec{
		Protocols: []string{"opt", "dbao"},
		Duties:    []float64{0.01},
		Seeds:     6,
		M:         400,
		Coverage:  0.99,
		TopoSeed:  1,
		Parallel:  1,
	}
}

// newService builds a Service over a fresh (or given) directory and
// registers its drain with test cleanup.
func newService(t *testing.T, dir string, opts service.Options) *service.Service {
	t.Helper()
	opts.Dir = dir
	s, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort cleanup
	})
	return s
}

// waitState polls until the job reaches a terminal state or the deadline
// passes.
func waitState(t *testing.T, s *service.Service, id string, timeout time.Duration) service.State {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st := j.State(); st.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, j.State(), timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// referenceCSV runs the spec synchronously (no service, no journal) and
// returns the CSV bytes the service must reproduce.
func referenceCSV(t *testing.T, spec service.Spec) []byte {
	t.Helper()
	grid, err := service.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := runner.Run(context.Background(), grid.Jobs, grid.Options())
	var buf bytes.Buffer
	if err := grid.WriteCSV(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postSpec(t *testing.T, url string, spec service.Spec) (service.Status, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.Status
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func TestServiceEndToEnd(t *testing.T) {
	s := newService(t, t.TempDir(), service.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Submit.
	st, resp := postSpec(t, ts.URL, tinySpec())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	if st.State != service.StateQueued && st.State != service.StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}

	// Stream events until the terminal frame.
	evResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var sawProgress, sawDone bool
	var final service.Status
	sc := bufio.NewScanner(evResp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				sawProgress = true
			case "done":
				sawDone = true
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("bad done payload: %v", err)
				}
			}
		}
		if sawDone {
			break
		}
	}
	if !sawDone {
		t.Fatalf("stream ended without done event (progress seen: %v, scan err %v)", sawProgress, sc.Err())
	}
	if final.State != service.StateDone {
		t.Fatalf("terminal state = %s (%s)", final.State, final.Error)
	}
	if final.Progress == nil || final.Progress.Done != 2 || final.Progress.Total != 2 {
		t.Fatalf("final progress = %+v", final.Progress)
	}

	// Fetch the artifact and compare with the synchronous reference run.
	res, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("result Content-Type = %q", ct)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if want := referenceCSV(t, tinySpec()); !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("service CSV differs from direct run:\n%s\nvs\n%s", got.Bytes(), want)
	}

	// The JSON projection carries the same rows.
	jres, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jres.Body.Close()
	var rows struct {
		Rows []map[string]string `json:"rows"`
	}
	if err := json.NewDecoder(jres.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(bytes.NewReader(got.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != len(records)-1 {
		t.Fatalf("json rows = %d, csv rows = %d", len(rows.Rows), len(records)-1)
	}
	if rows.Rows[0]["protocol"] != records[1][0] {
		t.Fatalf("json row mismatch: %v vs %v", rows.Rows[0], records[1])
	}

	// Telemetry: server-level floodd.* plus the job's mounted registry.
	vres, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vres.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(vres.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if v, ok := vars["floodd.jobs.submitted"].(float64); !ok || v != 1 {
		t.Fatalf("floodd.jobs.submitted = %v", vars["floodd.jobs.submitted"])
	}
	if v, ok := vars["job."+st.ID+".runner.jobs.done"].(float64); !ok || v != 2 {
		t.Fatalf("per-job runner.jobs.done = %v", vars["job."+st.ID+".runner.jobs.done"])
	}
	if _, ok := vars["job."+st.ID+".sim.tx.attempts"]; !ok {
		t.Fatal("per-job sim.* counters not mounted under /debug/vars")
	}

	// Listing and health.
	lres, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lres.Body.Close()
	var list struct {
		Jobs []service.Status `json:"jobs"`
	}
	if err := json.NewDecoder(lres.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list = %+v", list.Jobs)
	}
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hres.StatusCode)
	}
}

// TestServiceDrainResumeByteIdentical is the daemon-kill contract: drain
// a service mid-job, bring a new one up over the same directory, and the
// finished artifact must be byte-identical to an uninterrupted run.
func TestServiceDrainResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second grid; skipped in -short")
	}
	want := referenceCSV(t, slowSpec())
	dir := t.TempDir()

	s1 := newService(t, dir, service.Options{})
	j, err := s1.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first journaled cell so the resume has something to
	// replay, then drain mid-run.
	ch, _ := j.Subscribe()
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("no progress within 30s")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	interrupted := j.State() == service.StateQueued
	if !interrupted {
		t.Logf("job finished before the drain landed; resume path not exercised this run")
	}

	// Restart over the same directory: the unfinished job is re-queued
	// and its journal replays the cells already done.
	s2 := newService(t, dir, service.Options{})
	j2, ok := s2.Job(j.ID)
	if !ok {
		t.Fatalf("job %s not resurrected on restart", j.ID)
	}
	if st := waitState(t, s2, j.ID, 120*time.Second); st != service.StateDone {
		t.Fatalf("resumed job state = %s (%s)", st, j2.Status().Error)
	}
	got, err := os.ReadFile(filepath.Join(dir, j.ID, "result.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if interrupted {
		if st := j2.Status(); st.Resumed == 0 {
			t.Fatalf("resumed job reports Resumed = 0, want > 0 (status %+v)", st)
		}
	}
}

func TestServiceCancel(t *testing.T) {
	dir := t.TempDir()
	s := newService(t, dir, service.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A running job and a queued one behind it.
	running, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job over HTTP: immediate terminal state.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued = %d", resp.StatusCode)
	}
	if st := waitState(t, s, queued.ID, 10*time.Second); st != service.StateCanceled {
		t.Fatalf("queued job state = %s, want canceled", st)
	}

	// Cancel the running job: the batch is interrupted with the
	// user-cancel cause and lands in canceled, not failed.
	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, s, running.ID, 30*time.Second); st != service.StateCanceled {
		t.Fatalf("running job state = %s, want canceled", st)
	}

	// Cancelling a terminal job is a 409.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE terminal = %d, want 409", resp.StatusCode)
	}

	// A canceled job stays canceled across restart (terminal status
	// persisted; nothing requeued).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	s2 := newService(t, dir, service.Options{})
	for _, id := range []string{running.ID, queued.ID} {
		j2, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		if st := j2.State(); st != service.StateCanceled {
			t.Fatalf("job %s = %s after restart, want canceled", id, st)
		}
	}
}

func TestServiceQueueLimit(t *testing.T) {
	s := newService(t, t.TempDir(), service.Options{QueueLimit: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Submit(slowSpec()); err != nil {
		t.Fatal(err)
	}
	_, resp := postSpec(t, ts.URL, tinySpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit POST = %d, want 429", resp.StatusCode)
	}
}

func TestServiceRejectsBadSpecs(t *testing.T) {
	s := newService(t, t.TempDir(), service.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"protocols":["bogus"]}`,
		`{"duties":[1.5]}`,
		`{"seeds":-1}`,
		`{"m":-1}`,
		`{"workers":-2}`,
		`{"unknown_field":1}`,
		`{"timeout":"not a duration"}`,
		`{"faults":{"crashes":[{"node":99999,"at":1}]}}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %s accepted with status %d", body, resp.StatusCode)
		}
	}
	if n := len(s.Jobs()); n != 0 {
		t.Fatalf("%d jobs admitted from invalid specs", n)
	}
}

// TestServiceConcurrentSubmits hammers the public surface from many
// goroutines; run under -race it is the data-race certification for the
// queue, the job state machines, and the SSE fan-out.
func TestServiceConcurrentSubmits(t *testing.T) {
	s := newService(t, t.TempDir(), service.Options{QueueLimit: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := service.Spec{
		Protocols: []string{"opt"},
		Duties:    []float64{0.20},
		Seeds:     1,
		M:         2,
		Coverage:  0.99,
		TopoSeed:  1,
	}
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := postSpec(t, ts.URL, spec)
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
			// Poll status and the list concurrently with the scheduler.
			for k := 0; k < 3; k++ {
				r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
				if err == nil {
					r.Body.Close()
				}
				r, err = http.Get(ts.URL + "/v1/jobs")
				if err == nil {
					r.Body.Close()
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, id := range ids {
		if st := waitState(t, s, id, 60*time.Second); st != service.StateDone {
			t.Fatalf("job %s = %s", id, st)
		}
	}
	// All eight ran to done; the counters agree.
	snap := s.Registry().Snapshot()
	if snap["floodd.jobs.submitted"] != n || snap["floodd.jobs.completed"] != n {
		t.Fatalf("counters: submitted=%d completed=%d, want %d/%d",
			snap["floodd.jobs.submitted"], snap["floodd.jobs.completed"], n, n)
	}
}

// TestServiceShutdownRaces drives the shutdown contention window under
// the race detector: a SIGTERM drain, a client cancel of the running
// job, and a fresh submission all landing on the same tick, repeatedly.
// Whatever interleaving wins, the service must settle (Drain returns),
// every job must end in a coherent state (terminal, or queued-for-resume
// with no terminal status on disk), and nothing may deadlock.
func TestServiceShutdownRaces(t *testing.T) {
	iters := 10
	if testing.Short() {
		iters = 3
	}
	for i := 0; i < iters; i++ {
		dir := t.TempDir()
		s := newService(t, dir, service.Options{QueueLimit: 8})
		j, err := s.Submit(slowSpec())
		if err != nil {
			t.Fatal(err)
		}
		// Let the scheduler reach the running window on some iterations and
		// race the submit-to-run handoff on others.
		if i%2 == 0 {
			deadline := time.Now().Add(10 * time.Second)
			for j.State() == service.StateQueued && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(3)
		errs := make(chan error, 1)
		go func() {
			defer wg.Done()
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				select {
				case errs <- fmt.Errorf("drain: %w", err):
				default:
				}
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			s.Cancel(j.ID) //nolint:errcheck // ErrJobTerminal is a legal race outcome
		}()
		go func() {
			defer wg.Done()
			<-start
			// Submission racing the drain flag: either admitted or rejected
			// with ErrDraining; anything else is a bug.
			if _, err := s.Submit(tinySpec()); err != nil && err != service.ErrDraining {
				select {
				case errs <- fmt.Errorf("submit: %w", err):
				default:
				}
			}
		}()
		close(start)
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}

		// The raced job must be coherent: terminal (cancel won) or queued
		// for resume (drain won) — and if terminal, status.json must exist;
		// if queued, it must not.
		st := j.State()
		_, statErr := os.Stat(filepath.Join(dir, j.ID, "status.json"))
		switch {
		case st.Terminal() && statErr != nil:
			t.Fatalf("iter %d: job %s terminal (%s) but status.json missing: %v", i, j.ID, st, statErr)
		case st == service.StateQueued && statErr == nil:
			t.Fatalf("iter %d: job %s queued for resume but terminal status persisted", i, j.ID)
		case !st.Terminal() && st != service.StateQueued:
			t.Fatalf("iter %d: job %s settled in %s", i, j.ID, st)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{`"1.5s"`, 1500 * time.Millisecond},
		{`"200ms"`, 200 * time.Millisecond},
		{fmt.Sprint(int64(2 * time.Second)), 2 * time.Second},
	} {
		var d service.Duration
		if err := json.Unmarshal([]byte(tc.in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", tc.in, err)
		}
		if time.Duration(d) != tc.want {
			t.Fatalf("unmarshal %s = %v, want %v", tc.in, time.Duration(d), tc.want)
		}
	}
	out, err := json.Marshal(service.Duration(90 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"1m30s"` {
		t.Fatalf("marshal = %s", out)
	}
}

package service

// The HTTP surface over Service, on a private mux (the
// internal/telemetry.Server pattern: importing this package can never
// leak handlers into an embedding application's DefaultServeMux).
//
//	POST   /v1/jobs              submit a Spec, get a queued Status (201)
//	GET    /v1/jobs              list all jobs' Statuses
//	GET    /v1/jobs/{id}         one job's Status
//	GET    /v1/jobs/{id}/events  SSE progress stream, ends with "done"
//	GET    /v1/jobs/{id}/result  the CSV artifact (?format=json for rows)
//	DELETE /v1/jobs/{id}         cancel (queued or running)
//	GET    /v1/work              the job currently accepting leases (204 if none)
//	POST   /v1/jobs/{id}/lease   claim a chunk (distributed mode; 204 no work)
//	POST   /v1/jobs/{id}/lease/{lease}/heartbeat  renew a lease (410 gone)
//	POST   /v1/jobs/{id}/lease/{lease}/complete   report chunk results
//	GET    /healthz              "ok", or 503 while draining
//	GET    /debug/vars           expvar JSON: floodd.* plus every live
//	                             job's registry prefixed "job.<id>."
//	GET    /debug/pprof/...      the standard net/http/pprof handlers
//
// docs/SERVICE.md is the full reference with a worked curl session.

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"

	"ldcflood/internal/lease"
	"ldcflood/internal/telemetry"
)

// Handler returns the service's HTTP API on a fresh private mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	requests := s.reg.Counter("floodd.http.requests")
	streams := s.reg.Gauge("floodd.events.streams")
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		streams.Add(1)
		defer streams.Add(-1)
		s.handleEvents(w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/work", s.handleWork)
	mux.HandleFunc("POST /v1/jobs/{id}/lease", s.handleLease)
	mux.HandleFunc("POST /v1/jobs/{id}/lease/{lease}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/jobs/{id}/lease/{lease}/complete", s.handleComplete)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		mux.ServeHTTP(w, r)
	})
}

// httpError is the JSON error envelope: {"error": "..."}.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck // best-effort error body
}

// writeStatus emits one job Status as JSON.
func writeStatus(w http.ResponseWriter, code int, st Status) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st) //nolint:errcheck // client gone is the only failure
}

// handleSubmit is POST /v1/jobs: decode a Spec, admit it, 201 + Status.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeStatus(w, http.StatusCreated, j.Status())
	}
}

// handleList is GET /v1/jobs: every job's Status in submission order.
func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct { //nolint:errcheck // client gone is the only failure
		Jobs []Status `json:"jobs"`
	}{out})
}

// lookup resolves {id} or writes a 404.
func (s *Service) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j, ok
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeStatus(w, http.StatusOK, j.Status())
	}
}

// handleCancel is DELETE /v1/jobs/{id}: cancel and return the (possibly
// already-updated) Status; 409 for a job that already finished.
func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	switch err := s.Cancel(j.ID); {
	case errors.Is(err, ErrJobTerminal):
		httpError(w, http.StatusConflict, "job %s already %s", j.ID, j.State())
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeStatus(w, http.StatusOK, j.Status())
	}
}

// handleResult is GET /v1/jobs/{id}/result: the CSV artifact byte-for-
// byte (text/csv), or the same rows as JSON objects with ?format=json.
// A job that has not succeeded answers 409 with its current state.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if st := j.State(); st != StateDone {
		httpError(w, http.StatusConflict, "job %s is %s, result not available", j.ID, st)
		return
	}
	f, err := os.Open(j.resultPath())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "result artifact missing: %v", err)
		return
	}
	defer f.Close()
	if r.URL.Query().Get("format") == "json" {
		records, err := csv.NewReader(f).ReadAll()
		if err != nil || len(records) == 0 {
			httpError(w, http.StatusInternalServerError, "reading artifact: %v", err)
			return
		}
		rows := make([]map[string]string, 0, len(records)-1)
		for _, rec := range records[1:] {
			row := make(map[string]string, len(records[0]))
			for i, k := range records[0] {
				row[k] = rec[i]
			}
			rows = append(rows, row)
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct { //nolint:errcheck // client gone is the only failure
			Rows []map[string]string `json:"rows"`
		}{rows})
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.ID+".csv"))
	io.Copy(w, f) //nolint:errcheck // client gone is the only failure
}

// handleEvents is GET /v1/jobs/{id}/events: a server-sent-event stream
// of "progress" snapshots ending with one "done" event carrying the
// terminal Status. A subscriber arriving after the job finished gets the
// "done" event immediately. The stream also ends when the client goes
// away or the server drains (the daemon closes listeners on shutdown).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, st := j.Subscribe()
	defer j.Unsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Open with the current snapshot so clients need no separate status
	// fetch to render initial state.
	writeEvent(w, Event{Type: "status", Data: st})
	fl.Flush()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			writeEvent(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame: "event: <type>\ndata: <json>\n\n".
func writeEvent(w io.Writer, ev Event) {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		data = []byte(`{}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

// writeJSONBody emits v as indented JSON with the given status code.
func writeJSONBody(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

// handleWork is GET /v1/work: the id of the job currently accepting
// leases, or 204 when no distributed job is running. Workers poll this
// to discover work without knowing job ids in advance.
func (s *Service) handleWork(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	act := s.active
	s.mu.Unlock()
	if act == nil || act.distributed() == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSONBody(w, http.StatusOK, WorkReply{ID: act.ID})
}

// leaseRun resolves {id} to its live distributed run, or writes the
// appropriate error: 404 for an unknown job, 409 for a job that is not
// currently executing in distributed mode.
func (s *Service) leaseRun(w http.ResponseWriter, r *http.Request) (*distRun, bool) {
	j, ok := s.lookup(w, r)
	if !ok {
		return nil, false
	}
	dist := j.distributed()
	if dist == nil {
		httpError(w, http.StatusConflict, "job %s is not accepting leases (state %s)", j.ID, j.State())
		return nil, false
	}
	return dist, true
}

// handleLease is POST /v1/jobs/{id}/lease: claim a chunk. 200 with a
// LeaseGrant, 204 when every chunk is leased out or backing off (retry
// shortly), 410 once the job's work set has settled.
func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	dist, ok := s.leaseRun(w, r)
	if !ok {
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	l, err := dist.mgr.Lease(req.Worker)
	switch {
	case errors.Is(err, lease.ErrNoWork):
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, lease.ErrFinished):
		httpError(w, http.StatusGone, "job finished leasing")
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSONBody(w, http.StatusOK, LeaseGrant{
			Lease: l.ID, Chunk: l.Chunk, Cells: l.Cells,
			Deadline: l.Deadline, TTL: Duration(dist.ttl), Key: dist.key,
		})
	}
}

// handleHeartbeat is POST /v1/jobs/{id}/lease/{lease}/heartbeat: renew a
// lease. 410 means the lease is gone (expired, superseded, or completed)
// and the worker should abandon the chunk.
func (s *Service) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	dist, ok := s.leaseRun(w, r)
	if !ok {
		return
	}
	deadline, err := dist.mgr.Heartbeat(r.PathValue("lease"))
	if err != nil {
		httpError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSONBody(w, http.StatusOK, HeartbeatReply{Deadline: deadline})
}

// maxCompleteBody bounds a completion report's size. Results carry full
// sim.Result payloads (per-packet delay vectors included), so the limit
// is far above the submit endpoint's.
const maxCompleteBody = 64 << 20

// handleComplete is POST /v1/jobs/{id}/lease/{lease}/complete: report a
// chunk's outcomes. Accepted cells are journaled; duplicates from zombie
// workers are dropped and reported in the CompleteReply. 409 rejects a
// journal-key mismatch (daemon/worker version skew), 410 an unknown or
// expired-and-superseded lease, 400 a malformed report.
func (s *Service) handleComplete(w http.ResponseWriter, r *http.Request) {
	dist, ok := s.leaseRun(w, r)
	if !ok {
		return
	}
	var req CompleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCompleteBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad completion report: %v", err)
		return
	}
	if req.Key != "" && req.Key != dist.key {
		httpError(w, http.StatusConflict, "journal key mismatch: report %q, job %q", req.Key, dist.key)
		return
	}
	reply, err := dist.apply(r.PathValue("lease"), req.Results)
	switch {
	case errors.Is(err, lease.ErrLeaseGone):
		// Still a JSON reply (Zombie set) so the worker can distinguish
		// "my work was redundant" from transport failures.
		writeJSONBody(w, http.StatusGone, reply)
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSONBody(w, http.StatusOK, reply)
	}
}

// handleHealth is GET /healthz: "ok" while accepting jobs, 503 once
// draining.
func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleVars is GET /debug/vars: the expvar-compatible JSON document —
// cmdline and memstats (what stdlib expvar always publishes), the
// service-level floodd.* instruments, and every job's private registry
// with its keys prefixed "job.<id>." (the per-job runner.*, sim.* and
// fault.* catalogs from docs/OBSERVABILITY.md). Assembled by hand like
// telemetry.Server's, and for the same reason: expvar's process-global
// registry panics on duplicate names across servers.
func (s *Service) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	cmdline, _ := json.Marshal(os.Args)
	memstats, _ := json.Marshal(mem)
	fmt.Fprintf(w, "{\n\"cmdline\": %s,\n\"memstats\": %s", cmdline, memstats)
	writeSnap := func(prefix string, snap telemetry.Snapshot) {
		for _, k := range snap.Keys() {
			fmt.Fprintf(w, ",\n%q: %d", prefix+k, snap[k])
		}
	}
	writeSnap("", s.reg.Snapshot())
	for _, j := range s.Jobs() {
		writeSnap("job."+j.ID+".", j.Registry.Snapshot())
	}
	fmt.Fprint(w, "\n}\n")
}

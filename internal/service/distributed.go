package service

// The distributed execution path: when Options.Lease is enabled, a job
// runs as a set of leasable chunks arbitrated by internal/lease instead
// of one local runner batch. Remote floodworker processes pull chunks
// over the HTTP endpoints in http.go; the daemon's own local executor
// pulls through exactly the same code path (after LocalGrace), so a
// daemon with zero connected workers still completes every job.
//
// Results flow through the same journal as the local path — every
// accepted cell is appended via Journal.Record, idempotently by index —
// which is what makes the final CSV byte-identical to a single-daemon
// run no matter how many workers died, how many chunks were reassigned,
// or how many zombie completions were dropped along the way.
// docs/SERVICE.md ("Distributed sweeps") is the protocol reference.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"ldcflood/internal/lease"
	"ldcflood/internal/runner"
	"ldcflood/internal/sim"
)

// LeaseRequest is the JSON body of POST /v1/jobs/{id}/lease.
type LeaseRequest struct {
	// Worker is the claimant's self-reported name (diagnostics only).
	Worker string `json:"worker"`
}

// LeaseGrant is the JSON reply to a successful lease claim.
type LeaseGrant struct {
	// Lease is the opaque lease id presented back on heartbeat/complete.
	Lease string `json:"lease"`
	// Chunk is the claimed chunk's id.
	Chunk int `json:"chunk"`
	// Cells are the global batch indices to execute (indices into the
	// grid the worker compiles from the job's Spec).
	Cells []int `json:"cells"`
	// Deadline is when the lease expires unless renewed.
	Deadline time.Time `json:"deadline"`
	// TTL is the lease lifetime; workers heartbeat at a fraction of it.
	TTL Duration `json:"ttl"`
	// Key is the job's journal key. Workers verify the grid they compiled
	// locally produces the same key before executing — a mismatch means
	// daemon/worker version skew and executing would corrupt the sweep.
	Key string `json:"key"`
}

// CellOutcome is one cell's result inside a CompleteRequest: either a
// simulation result (success) or an error description (failure).
type CellOutcome struct {
	// Index is the cell's global batch index.
	Index int `json:"index"`
	// Res is the simulation output; nil when Error is set.
	Res *sim.Result `json:"res,omitempty"`
	// Error is the failure text for a cell that did not complete.
	Error string `json:"error,omitempty"`
	// Terminal marks a deterministic failure (engine validation, slot
	// budget): retrying cannot help, so the chunk poisons immediately.
	Terminal bool `json:"terminal,omitempty"`
}

// CompleteRequest is the JSON body of POST
// /v1/jobs/{id}/lease/{lease}/complete.
type CompleteRequest struct {
	// Worker is the reporting worker's name (diagnostics only).
	Worker string `json:"worker"`
	// Key must match the job's journal key (the one the grant carried);
	// a mismatch rejects the whole report.
	Key string `json:"key"`
	// Results holds one outcome per cell the worker executed.
	Results []CellOutcome `json:"results"`
}

// CompleteReply is the JSON verdict on a completion report.
type CompleteReply struct {
	// Accepted counts cells persisted to the journal from this report.
	Accepted int `json:"accepted"`
	// Dropped counts cells someone else had already completed (zombie
	// duplicates, dropped to keep per-cell idempotency).
	Dropped int `json:"dropped"`
	// Zombie reports that the completing lease had expired or was unknown:
	// the worker outlived its ownership.
	Zombie bool `json:"zombie"`
}

// HeartbeatReply is the JSON reply to a lease renewal.
type HeartbeatReply struct {
	// Deadline is the lease's renewed expiry.
	Deadline time.Time `json:"deadline"`
}

// WorkReply is the JSON reply of GET /v1/work: the job currently
// accepting leases.
type WorkReply struct {
	// ID is the running distributed job's id.
	ID string `json:"id"`
}

// distRun is the live state of one distributed job execution: the lease
// manager plus everything a completion report needs (the grid for
// validation, the journal for persistence, the job for progress fan-out).
type distRun struct {
	mgr   *lease.Manager
	grid  *Grid
	jrn   *runner.Journal
	key   string
	ttl   time.Duration
	job   *Job
	start time.Time
	total int

	mu    sync.Mutex
	slots int64 // simulated slots accumulated (journaled + accepted)
}

// runDistributed executes one job through the lease protocol and settles
// its fate; it is runJob's distributed half and honors the same state
// machine (drain → requeued, user cancel → canceled, wall-clock → failed).
func (s *Service) runDistributed(j *Job, grid *Grid, jrn *runner.Journal) {
	// Cells already in the journal (a resumed job) are done by definition;
	// only the remainder is leased out.
	var remaining []int
	var slots int64
	for i := range grid.Jobs {
		if res, ok := jrn.Done(i); ok {
			slots += res.TotalSlots
		} else {
			remaining = append(remaining, i)
		}
	}
	lo := s.opts.Lease
	ttl := lo.TTL
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	h := fnv.New64a()
	h.Write([]byte(grid.JournalKey()))
	mgr := lease.NewManager(lease.Config{
		Cells:       remaining,
		ChunkSize:   lo.ChunkSize,
		TTL:         ttl,
		MaxAttempts: lo.MaxAttempts,
		Seed:        h.Sum64(),
		Telemetry:   j.Registry,
	})
	st := &distRun{
		mgr: mgr, grid: grid, jrn: jrn, key: grid.JournalKey(),
		ttl: ttl, job: j, start: time.Now(), total: len(grid.Jobs),
		slots: slots,
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	if s.opts.JobTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeoutCause(ctx, s.opts.JobTimeout, errJobWall)
		defer tcancel()
	}

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.resumed = jrn.Completed()
	j.stop = func(cause error) { cancel(cause) }
	j.dist = st
	userCanceled := j.canceled
	j.mu.Unlock()
	s.logf("job %s: running distributed (%d cells, %d journaled, %d chunks)",
		j.ID, len(grid.Cells), jrn.Completed(), mgr.Snapshot().Chunks)

	// Close the drain race: Drain may have set draining between the
	// scheduler popping this job and the stopper landing in j.stop.
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		cancel(runner.ErrShutdown)
	}
	if userCanceled {
		cancel(errUserCancel)
	}

	st.observe(0)

	// The sweeper: expired leases must requeue even when no protocol call
	// arrives to trigger a lazy sweep (every worker dead at once).
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(ttl / 4)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-mgr.Finished():
				return
			case <-tick.C:
				if n := mgr.Expire(time.Now()); n > 0 {
					s.logf("job %s: %d lease(s) expired, chunks requeued", j.ID, n)
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		st.localExec(ctx, lo.LocalGrace)
	}()

	select {
	case <-mgr.Finished():
	case <-ctx.Done():
		mgr.Stop(context.Cause(ctx))
	}
	cancel(nil)
	wg.Wait()

	if err := jrn.Err(); err != nil {
		s.logf("job %s: journal degraded: %v", j.ID, err)
	}

	ferr := mgr.Err()
	switch {
	case ferr == nil:
		// Every chunk completed; the journal is the single source of truth
		// for the per-cell results (exactly as a resumed local batch).
		rs := make(runner.Results, len(grid.Jobs))
		for i := range rs {
			res, ok := jrn.Done(i)
			if !ok {
				s.settle(j, StateFailed, fmt.Sprintf("cell %d missing from journal after completion", i))
				return
			}
			rs[i] = runner.Result{Index: i, Res: res}
		}
		if err := s.writeResult(j, grid, rs); err != nil {
			s.settle(j, StateFailed, err.Error())
			return
		}
		s.settle(j, StateDone, "")
	case errors.Is(ferr, runner.ErrShutdown):
		// Drained mid-run: back to queued, no terminal status on disk —
		// the next daemon re-queues and the journal resumes the sweep.
		j.mu.Lock()
		j.state = StateQueued
		j.stop = nil
		j.dist = nil
		j.mu.Unlock()
		s.logf("job %s: interrupted by drain, will resume on restart", j.ID)
	case errors.Is(ferr, errUserCancel):
		s.settle(j, StateCanceled, errUserCancel.Error())
	case errors.Is(ferr, errJobWall):
		s.settle(j, StateFailed, fmt.Sprintf("job exceeded wall-clock budget %v", s.opts.JobTimeout))
	default:
		// A poison trip or another terminal lease failure.
		s.settle(j, StateFailed, ferr.Error())
	}
}

// localIdlePoll is how often the local executor re-asks for work while
// every chunk is leased out or backing off.
const localIdlePoll = 50 * time.Millisecond

// localExec is the daemon's own worker: it pulls chunks through the same
// lease protocol remote workers use, so a job completes even when no
// worker ever connects — and the daemon competes fairly with workers
// instead of hoarding chunks.
func (d *distRun) localExec(ctx context.Context, grace time.Duration) {
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		case <-d.mgr.Finished():
			return
		}
	}
	for ctx.Err() == nil {
		l, err := d.mgr.Lease("local")
		switch {
		case errors.Is(err, lease.ErrFinished):
			return
		case errors.Is(err, lease.ErrNoWork):
			t := time.NewTimer(localIdlePoll)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			case <-d.mgr.Finished():
				t.Stop()
				return
			}
		case err != nil:
			return
		default:
			d.runChunk(ctx, l)
		}
	}
}

// runChunk executes one leased chunk locally — heartbeating while it
// runs — and reports the outcome through the same completion path the
// HTTP handler uses.
func (d *distRun) runChunk(ctx context.Context, l *lease.Lease) {
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	go func() {
		tick := time.NewTicker(d.ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				// A failed renewal (the lease expired anyway) is settled at
				// completion time; the zombie path makes it harmless.
				d.mgr.Heartbeat(l.ID) //nolint:errcheck // see above
			}
		}
	}()

	cfgs := make([]sim.Config, len(l.Cells))
	for i, idx := range l.Cells {
		cfgs[i] = d.grid.Jobs[idx]
		cfgs[i].Telemetry = d.job.Registry
	}
	ropts := d.grid.Options()
	ropts.Telemetry = d.job.Registry
	rs, _ := runner.Run(ctx, cfgs, ropts)
	if ctx.Err() != nil {
		// Torn down mid-chunk (drain, cancel, wall clock): report nothing —
		// the manager is being stopped, and an unreported lease just expires.
		return
	}
	outs := make([]CellOutcome, len(rs))
	for i := range rs {
		outs[i] = CellOutcome{Index: l.Cells[i], Res: rs[i].Res}
		if err := rs[i].Err; err != nil {
			outs[i].Error = err.Error()
			outs[i].Terminal = terminalFailure(err)
		}
	}
	d.apply(l.ID, outs) //nolint:errcheck // lease-gone late reports are expected
}

// terminalFailure reports whether a runner job error is deterministic —
// retrying the cell on another lease cannot change the outcome, so the
// chunk should poison immediately instead of burning its attempt budget.
func terminalFailure(err error) bool {
	var je *runner.JobError
	if !errors.As(err, &je) {
		return false
	}
	switch je.Kind {
	case runner.KindSim, runner.KindSlotLimit:
		return true
	}
	return false
}

// apply validates and applies one completion report — the single path
// shared by the HTTP complete handler and the local executor. Accepted
// cells are journaled; duplicates (zombie double-completions) are
// dropped; failure reports requeue or poison the chunk. The returned
// error is ErrLeaseGone for an unhonored lease, or a validation error
// (HTTP 400) for a malformed report.
func (d *distRun) apply(id string, outs []CellOutcome) (CompleteReply, error) {
	var cells []int
	byIdx := make(map[int]*sim.Result, len(outs))
	var errText string
	var terminal bool
	for _, o := range outs {
		if o.Error != "" {
			if errText == "" || (o.Terminal && !terminal) {
				errText = fmt.Sprintf("cell %d: %s", o.Index, o.Error)
			}
			terminal = terminal || o.Terminal
			continue
		}
		if o.Res == nil {
			return CompleteReply{}, fmt.Errorf("cell %d: success outcome carries no result", o.Index)
		}
		if _, dup := byIdx[o.Index]; dup {
			continue
		}
		cells = append(cells, o.Index)
		byIdx[o.Index] = o.Res
	}

	var acc lease.Accept
	var err error
	if errText != "" && (terminal || len(cells) == 0) {
		// A terminal failure outranks any partial success — the sweep
		// cannot complete, so poison now rather than persist and retry.
		acc, err = d.mgr.Complete(id, nil, errText, terminal)
	} else {
		// Pure success, or transient failure alongside successes: accept
		// what landed; Complete requeues the chunk's remainder itself.
		acc, err = d.mgr.Complete(id, cells, "", false)
	}
	reply := CompleteReply{Accepted: len(acc.Cells), Dropped: acc.Dropped, Zombie: acc.Zombie}
	if err != nil {
		if errors.Is(err, lease.ErrLeaseGone) {
			return reply, err
		}
		var pe *lease.PoisonError
		if errors.As(err, &pe) {
			// The report itself was processed; the manager settled poisoned
			// and runDistributed is failing the job.
			return reply, nil
		}
		return reply, err
	}

	var slots int64
	for _, idx := range acc.Cells {
		res := byIdx[idx]
		d.jrn.Record(idx, res)
		slots += res.TotalSlots
	}
	if len(acc.Cells) > 0 {
		d.observe(slots)
	}
	return reply, nil
}

// observe folds newly-accepted slots into the running totals and fans a
// progress snapshot out to the job's subscribers (the same surface the
// local batch path feeds through runner.Options.Progress).
func (d *distRun) observe(newSlots int64) {
	d.mu.Lock()
	d.slots += newSlots
	slots := d.slots
	d.mu.Unlock()
	done := d.jrn.Completed()
	elapsed := time.Since(d.start)
	var eta time.Duration
	var rate float64
	if sec := elapsed.Seconds(); sec > 0 {
		rate = float64(slots) / sec
	}
	if done > 0 && done < d.total {
		eta = time.Duration(float64(elapsed) / float64(done) * float64(d.total-done))
	}
	d.job.observe(runner.Progress{
		Done: done, Total: d.total, Slots: slots,
		Elapsed: elapsed, ETA: eta, SlotsPerSec: rate,
	})
}

// Package service turns the batch simulation stack into a long-running
// job API: it accepts sweep specifications as JSON, validates them
// against the same configuration surface cmd/sweep exposes as flags,
// schedules each job as one internal/runner batch (with
// runner.SplitParallelism dividing the machine between batch- and
// shard-level workers), streams progress over server-sent events, and
// persists every job to a journal-backed directory so a killed daemon
// resumes byte-identically on restart.
//
// The package splits into three layers:
//
//   - Spec/Grid (spec.go): the declarative sweep description and its
//     compiled form — cells, fully-specified sim.Configs, the journal
//     key, and the CSV renderer. cmd/sweep compiles its flags through
//     the same code path, which is what makes a job submitted over HTTP
//     byte-identical to the same sweep run from the command line.
//   - Service/Job (service.go, job.go): the bounded FIFO job queue, the
//     scheduler goroutine, per-job state machines with telemetry
//     registries and subscriber fan-out, and the on-disk layout behind
//     crash-resume.
//   - Handler (http.go): the stdlib-HTTP surface — POST /v1/jobs,
//     status, SSE events, result artifacts, DELETE-to-cancel, and the
//     /debug/vars + pprof endpoints (telemetry.Server's private-mux
//     pattern).
//
// cmd/floodd is the daemon front-end; docs/SERVICE.md is the API
// reference and operations guide.
package service

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
	"time"

	"ldcflood/internal/fault"
	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/runner"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/stats"
	"ldcflood/internal/topology"
)

// Duration is a time.Duration that marshals to and from JSON as a Go
// duration string ("1.5s", "200ms"); a bare JSON number is accepted as
// nanoseconds for compatibility with time.Duration's own encoding.
type Duration time.Duration

// MarshalJSON renders the duration as a quoted Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a quoted duration string or a number of
// nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("service: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// Spec is a sweep specification: the protocol × duty × seed grid plus
// every knob that shapes the simulation or its execution. It is the JSON
// body of POST /v1/jobs and the struct cmd/sweep's flags compile into —
// one surface, validated in one place (Compile).
//
// When submitted to a Service, zero fields take the same defaults as
// cmd/sweep's flags: protocols opt,dbao,of; duties 0.02,0.05,0.10,0.20;
// 1 seed; m=100; coverage 0.99; toposeed 1 (Compile itself is strict —
// cmd/sweep passes every field explicitly). The execution knobs
// (Parallel, Workers, Timeout, Retries, Backoff) never change simulation
// output — only wall-clock behavior — and are excluded from the journal
// key.
type Spec struct {
	// Protocols names the flood protocols to sweep (see flood.New).
	Protocols []string `json:"protocols,omitempty"`
	// Duties is the duty-cycle axis; every value must lie in (0,1].
	Duties []float64 `json:"duties,omitempty"`
	// Seeds is the number of per-cell seeds (0..Seeds-1).
	Seeds int `json:"seeds,omitempty"`
	// M is the number of packets per flood.
	M int `json:"m,omitempty"`
	// Coverage is the delivery-ratio target ending each run.
	Coverage float64 `json:"coverage,omitempty"`
	// TopoSeed seeds the synthetic GreenOrbs topology.
	TopoSeed uint64 `json:"toposeed,omitempty"`
	// SyncErr is the local-synchronization miss probability.
	SyncErr float64 `json:"syncerr,omitempty"`
	// Faults is an inline JSON fault schedule (the same document
	// cmd/sweep's -faults flag reads from a file; see internal/fault and
	// docs/FAULTS.md). Empty means a clean sweep.
	Faults json.RawMessage `json:"faults,omitempty"`
	// Compact opts into the compact-time fast path; dynamic fault
	// schedules fall back per-run exactly as with cmd/sweep -compact.
	Compact bool `json:"compact,omitempty"`
	// Workers selects the engine discipline per run: 0 = historical
	// serial engine, >= 1 = sharded deterministic mode (results identical
	// for every count), -1 = auto-split the machine between batch and
	// shard workers via runner.SplitParallelism.
	Workers int `json:"workers,omitempty"`
	// Parallel bounds the batch runner's worker pool (0 = GOMAXPROCS).
	// The output is byte-identical for every value.
	Parallel int `json:"parallel,omitempty"`
	// Timeout is the per-run wall-clock budget (0 = none); an overrunning
	// cell fails the job with a typed runner timeout error.
	Timeout Duration `json:"timeout,omitempty"`
	// Retries re-runs a retryably failing cell (timeout, panic) up to
	// this many times.
	Retries int `json:"retries,omitempty"`
	// Backoff is the base delay before the first retry, doubling per
	// attempt.
	Backoff Duration `json:"backoff,omitempty"`
}

// withDefaults returns the spec with cmd/sweep's flag defaults filled
// into zero axis fields.
func (s Spec) withDefaults() Spec {
	if len(s.Protocols) == 0 {
		s.Protocols = []string{"opt", "dbao", "of"}
	}
	if len(s.Duties) == 0 {
		s.Duties = []float64{0.02, 0.05, 0.10, 0.20}
	}
	if s.Seeds == 0 {
		s.Seeds = 1
	}
	if s.M == 0 {
		s.M = 100
	}
	if s.Coverage == 0 {
		s.Coverage = 0.99
	}
	if s.TopoSeed == 0 {
		s.TopoSeed = 1
	}
	return s
}

// Cell is one point of the sweep grid: a (protocol, duty, seed) triple.
type Cell struct {
	// Protocol is the flood protocol name.
	Protocol string
	// Duty is the duty cycle.
	Duty float64
	// Seed is the per-cell simulation seed.
	Seed uint64
}

// String names the cell the way sweep error messages always have:
// "opt at duty 0.02 seed 3".
func (c Cell) String() string {
	return fmt.Sprintf("%s at duty %v seed %d", c.Protocol, c.Duty, c.Seed)
}

// Grid is a compiled Spec: the validated cell list, one fully-specified
// sim.Config per cell, and the resolved parallelism split. Compile is the
// only constructor.
type Grid struct {
	// Spec is the (defaulted) specification the grid was compiled from.
	Spec Spec
	// Cells lists the grid points in sweep order (protocol-major,
	// duty, then seed); Cells[i] produced Jobs[i].
	Cells []Cell
	// Jobs holds one fully-specified engine config per cell, ready for
	// runner.Run. Configs share the topology graph and fault schedule.
	Jobs []sim.Config
	// BatchWorkers is the resolved runner.Options.Workers value.
	BatchWorkers int
	// ShardWorkers is the resolved per-run sim.Config.Workers value.
	ShardWorkers int

	faultJSON []byte
}

// Compile validates spec (protocols, duty ranges, grid arithmetic, the
// inline fault schedule against the topology) and builds the runnable
// grid. Validation is strict — zero axes are rejected, not defaulted;
// the Service applies Spec's documented defaults at submission, before
// compiling. Workers == -1 resolves the batch/shard split with
// runner.SplitParallelism; the split never changes output, only
// wall-clock time.
func Compile(spec Spec) (*Grid, error) {
	if len(spec.Protocols) == 0 {
		return nil, fmt.Errorf("need at least one protocol")
	}
	if len(spec.Duties) == 0 {
		return nil, fmt.Errorf("need at least one duty")
	}
	// Trim into a fresh slice: the caller's Spec (and anything aliasing
	// its backing array, like a served job status) must stay untouched.
	protocols := make([]string, len(spec.Protocols))
	for i, p := range spec.Protocols {
		protocols[i] = strings.TrimSpace(p)
		if _, err := flood.New(protocols[i]); err != nil {
			return nil, err
		}
	}
	spec.Protocols = protocols
	for _, v := range spec.Duties {
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("duty %v outside (0,1]", v)
		}
	}
	if spec.Seeds < 1 {
		return nil, fmt.Errorf("need at least one seed")
	}
	if spec.M < 1 {
		return nil, fmt.Errorf("need m >= 1")
	}
	if spec.Workers < -1 {
		return nil, fmt.Errorf("workers %d outside -1..n", spec.Workers)
	}
	if spec.Timeout < 0 || spec.Backoff < 0 {
		return nil, fmt.Errorf("negative duration in spec")
	}
	if spec.Retries < 0 {
		return nil, fmt.Errorf("negative retries")
	}

	g := topology.GreenOrbs(spec.TopoSeed)
	var fs *fault.Schedule
	var faultJSON []byte
	if len(spec.Faults) > 0 {
		faultJSON = []byte(spec.Faults)
		var err error
		if fs, err = fault.Parse(faultJSON); err != nil {
			return nil, err
		}
		if err := fs.Validate(g); err != nil {
			return nil, err
		}
	}

	grid := &Grid{Spec: spec, faultJSON: faultJSON}
	for _, p := range spec.Protocols {
		for _, d := range spec.Duties {
			for s := 0; s < spec.Seeds; s++ {
				grid.Cells = append(grid.Cells, Cell{Protocol: p, Duty: d, Seed: uint64(s)})
			}
		}
	}
	// Resolve the engine discipline before jobs are built: Workers == -1
	// splits the machine budget between batch-level and shard-level
	// parallelism (both layers are deterministic, so the CSV is identical
	// for every split).
	grid.BatchWorkers, grid.ShardWorkers = spec.Parallel, spec.Workers
	if spec.Workers < 0 {
		grid.BatchWorkers, grid.ShardWorkers = runner.SplitParallelism(spec.Parallel, len(grid.Cells))
	}

	grid.Jobs = make([]sim.Config, len(grid.Cells))
	for i, c := range grid.Cells {
		p, err := flood.New(c.Protocol)
		if err != nil {
			return nil, err
		}
		period := schedule.PeriodForDuty(c.Duty)
		grid.Jobs[i] = sim.Config{
			Graph:         g,
			Schedules:     schedule.AssignUniform(g.N(), period, rngutil.New(c.Seed).SubName("schedule")),
			Protocol:      p,
			M:             spec.M,
			Coverage:      spec.Coverage,
			Seed:          c.Seed,
			SyncErrorProb: spec.SyncErr,
			Faults:        fs,
			CompactTime:   spec.Compact,
			Workers:       grid.ShardWorkers,
		}
	}
	return grid, nil
}

// JournalKey identifies the batch a journal belongs to: every parameter
// that changes the simulation output, including the fault spec itself
// (hashed, so an edited spec invalidates old checkpoints) and the engine
// discipline (serial vs sharded — two different, individually
// deterministic RNG streams). The exact shard-worker count is NOT keyed:
// every count >= 1 produces identical results by construction, so a
// journal written at workers=1 resumes cleanly at workers=4. The
// execution knobs (Parallel, Timeout, Retries, Backoff) are excluded for
// the same reason.
func (g *Grid) JournalKey() string {
	h := fnv.New64a()
	h.Write(g.faultJSON)
	duties := make([]string, len(g.Spec.Duties))
	for i, d := range g.Spec.Duties {
		duties[i] = strconv.FormatFloat(d, 'g', -1, 64)
	}
	return fmt.Sprintf("sweep|protocols=%s|duties=%s|seeds=%d|m=%d|coverage=%g|toposeed=%d|syncerr=%g|compact=%v|sharded=%v|faults=%x",
		strings.Join(g.Spec.Protocols, ","), strings.Join(duties, ","),
		g.Spec.Seeds, g.Spec.M, g.Spec.Coverage, g.Spec.TopoSeed, g.Spec.SyncErr,
		g.Spec.Compact, g.ShardWorkers > 0, h.Sum64())
}

// LegacyJournalKey reports whether a stored journal key matches want
// except for pre-canonicalization duty formatting. Older sweep releases
// wrote the duty axis into the key exactly as the user typed it
// ("0.10,0.20"); JournalKey now canonicalizes each value through
// strconv.FormatFloat(d, 'g', -1, 64) ("0.1,0.2"), so a journal written
// before the change can never match even though its records are valid
// results for the very same grid. Callers (cmd/sweep) use this to turn a
// bare key-mismatch error into an actionable migration message instead
// of leaving the user to diff two opaque key strings.
func LegacyJournalKey(stored, want string) bool {
	if stored == want {
		return false
	}
	const marker = "|duties="
	i := strings.Index(stored, marker)
	if i < 0 {
		return false
	}
	start := i + len(marker)
	n := strings.Index(stored[start:], "|")
	if n < 0 {
		return false
	}
	parts := strings.Split(stored[start:start+n], ",")
	canon := make([]string, len(parts))
	for k, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return false
		}
		canon[k] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return stored[:start]+strings.Join(canon, ",")+stored[start+n:] == want
}

// Options returns the runner options the grid's spec asks for (workers,
// per-run timeout, retry policy). Callers attach Journal, Progress and
// Telemetry on top.
func (g *Grid) Options() runner.Options {
	return runner.Options{
		Workers:      g.BatchWorkers,
		Timeout:      time.Duration(g.Spec.Timeout),
		Retries:      g.Spec.Retries,
		RetryBackoff: time.Duration(g.Spec.Backoff),
	}
}

// CSVHeader is the result artifact's column set, shared by cmd/sweep's
// stdout and the service's result endpoint.
var CSVHeader = []string{
	"protocol", "duty", "period", "seed",
	"mean_delay", "p50_delay", "p99_delay",
	"transmissions", "failures", "loss", "collision", "busy", "sync", "jam",
	"overheard", "crashes", "reboots", "total_slots", "completed",
}

// CSVRow formats one finished cell as a CSV record in CSVHeader order.
func CSVRow(c Cell, res *sim.Result) []string {
	delays := stats.NewDigest()
	for _, d := range res.Delay {
		if d >= 0 {
			delays.Add(float64(d))
		}
	}
	p50, p99 := "", ""
	if delays.N() > 0 {
		p50 = fmt.Sprintf("%.1f", delays.Quantile(0.50))
		p99 = fmt.Sprintf("%.1f", delays.Quantile(0.99))
	}
	return []string{
		res.Protocol,
		fmt.Sprintf("%.4f", c.Duty),
		fmt.Sprintf("%d", schedule.PeriodForDuty(c.Duty)),
		fmt.Sprintf("%d", c.Seed),
		fmt.Sprintf("%.1f", res.MeanDelay()),
		p50,
		p99,
		fmt.Sprintf("%d", res.Transmissions),
		fmt.Sprintf("%d", res.Failures()),
		fmt.Sprintf("%d", res.LossFailures),
		fmt.Sprintf("%d", res.CollisionFailures),
		fmt.Sprintf("%d", res.BusyFailures),
		fmt.Sprintf("%d", res.SyncFailures),
		fmt.Sprintf("%d", res.JamFailures),
		fmt.Sprintf("%d", res.Overheard),
		fmt.Sprintf("%d", res.Crashes),
		fmt.Sprintf("%d", res.Reboots),
		fmt.Sprintf("%d", res.TotalSlots),
		fmt.Sprintf("%v", res.Completed),
	}
}

// WriteCSV renders a finished batch as the sweep CSV (header plus one row
// per cell in grid order). rs must be the runner's Results for this
// grid's Jobs. Failures are checked up front — an error naming the first
// failed cell is returned before a single byte is written, so a failed
// sweep never leaves a partial document.
func (g *Grid) WriteCSV(w io.Writer, rs runner.Results) error {
	for i := range rs {
		if rs[i].Err != nil {
			return fmt.Errorf("%s: %w", g.Cells[i], rs[i].Err)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	for i := range rs {
		if err := cw.Write(CSVRow(g.Cells[i], rs[i].Res)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

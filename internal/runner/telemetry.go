package runner

// Telemetry threading and the structured progress printer. The runner's
// counters live in the "runner." namespace (catalog in
// docs/OBSERVABILITY.md) and are resolved once per batch, so per-job
// updates are single atomic operations. The ETA and throughput figures in
// Progress and in the runner.eta_seconds / runner.slots_per_sec gauges are
// computed from the same done/slots/elapsed state inside the runner's one
// progress critical section — the hook and the registry can never report
// contradictory jobs-done counts.

import (
	"fmt"
	"io"
	"time"

	"ldcflood/internal/telemetry"
)

// runTel is the runner's resolved instrument set; nil when no registry is
// attached, making every update site one predictable branch.
type runTel struct {
	jobsTotal  *telemetry.Counter
	jobsDone   *telemetry.Counter
	jobsFailed *telemetry.Counter
	retries    *telemetry.Counter
	slots      *telemetry.Counter
	jrnAppends *telemetry.Counter
	jrnHits    *telemetry.Counter
	jobWall    *telemetry.Timer

	queueDepth  *telemetry.Gauge
	etaSeconds  *telemetry.Gauge
	slotsPerSec *telemetry.Gauge
}

// newRunTel resolves the runner counter set against reg and counts the
// batch's jobs into runner.jobs.total.
func newRunTel(reg *telemetry.Registry, jobs int) *runTel {
	rt := &runTel{
		jobsTotal:   reg.Counter("runner.jobs.total"),
		jobsDone:    reg.Counter("runner.jobs.done"),
		jobsFailed:  reg.Counter("runner.jobs.failed"),
		retries:     reg.Counter("runner.jobs.retries"),
		slots:       reg.Counter("runner.slots"),
		jrnAppends:  reg.Counter("runner.journal.appends"),
		jrnHits:     reg.Counter("runner.journal.hits"),
		jobWall:     reg.Timer("runner.job_wall"),
		queueDepth:  reg.Gauge("runner.queue.depth"),
		etaSeconds:  reg.Gauge("runner.eta_seconds"),
		slotsPerSec: reg.Gauge("runner.slots_per_sec"),
	}
	rt.jobsTotal.Add(int64(jobs))
	return rt
}

// estimate derives the batch ETA and slot throughput from one consistent
// (done, slots, elapsed) observation. Shared by the Progress snapshot and
// the telemetry gauges so the two surfaces always agree.
func estimate(done, total int, slots int64, elapsed time.Duration) (eta time.Duration, rate float64) {
	if done > 0 && done < total {
		eta = time.Duration(int64(elapsed) / int64(done) * int64(total-done))
	}
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(slots) / s
	}
	return eta, rate
}

// ProgressPrinter returns a Progress hook that writes a one-line structured
// snapshot to w at most once per every (and always for the final job):
//
//	jobs=128/512 failed=0 slots=3244032 slots_per_sec=1.6e+06 elapsed=2.1s eta=6.3s
//
// The hook keeps the runner's serialization contract (the runner already
// calls Progress under a lock), so the returned closure needs no locking of
// its own. every <= 0 prints every completion.
func ProgressPrinter(w io.Writer, every time.Duration) func(Progress) {
	var last time.Time
	return func(p Progress) {
		now := time.Now()
		if p.Done < p.Total && every > 0 && now.Sub(last) < every {
			return
		}
		last = now
		fmt.Fprintf(w, "jobs=%d/%d failed=%d slots=%d slots_per_sec=%.3g elapsed=%s eta=%s\n",
			p.Done, p.Total, p.Failed, p.Slots, p.SlotsPerSec,
			p.Elapsed.Round(time.Millisecond), p.ETA.Round(time.Millisecond))
	}
}

package runner_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/runner"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

// mute never transmits: its packets never cover, so a run only ends at its
// slot horizon — the shape of a runaway simulation.
type mute struct{}

func (mute) Name() string                    { return "MUTE" }
func (mute) Reset(*sim.World)                {}
func (mute) Intents(*sim.World) []sim.Intent { return nil }
func (mute) CollisionsApply() bool           { return true }
func (mute) Overhears() bool                 { return false }

// bomb panics on its first slot.
type bomb struct{ mute }

func (bomb) Intents(*sim.World) []sim.Intent { panic("bomb: injected fault") }

// quickJob is a small OPT flood that completes in well under a thousand
// slots.
func quickJob(seed uint64) sim.Config {
	g := topology.Line(6, 1)
	p, err := flood.New("opt")
	if err != nil {
		panic(err)
	}
	return sim.Config{
		Graph:     g,
		Schedules: schedule.AssignUniform(g.N(), 4, rngutil.New(seed).SubName("schedule")),
		Protocol:  p,
		M:         2,
		Coverage:  1,
		Seed:      seed,
	}
}

// stuckJob never covers and would simulate ~10^12 slots if nothing stopped
// it.
func stuckJob(seed uint64) sim.Config {
	cfg := quickJob(seed)
	cfg.Protocol = mute{}
	cfg.MaxSlots = 1 << 40
	return cfg
}

func TestRunOrderAndStats(t *testing.T) {
	jobs := make([]sim.Config, 5)
	for i := range jobs {
		jobs[i] = quickJob(uint64(100 + i))
	}
	rs, stats := runner.Run(context.Background(), jobs, runner.Options{Workers: 3})
	if len(rs) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(rs), len(jobs))
	}
	var wantSlots int64
	for i := range rs {
		if rs[i].Index != i {
			t.Fatalf("result %d carries index %d", i, rs[i].Index)
		}
		if rs[i].Err != nil || rs[i].Res == nil {
			t.Fatalf("job %d failed: %v", i, rs[i].Err)
		}
		// Each slot must hold exactly the output of a direct engine call
		// with the same config.
		direct, err := sim.Run(quickJob(uint64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		if rs[i].Res.TotalSlots != direct.TotalSlots || rs[i].Res.Transmissions != direct.Transmissions {
			t.Fatalf("job %d diverged from direct run: %d/%d vs %d/%d",
				i, rs[i].Res.TotalSlots, rs[i].Res.Transmissions, direct.TotalSlots, direct.Transmissions)
		}
		wantSlots += direct.TotalSlots
	}
	if stats.Jobs != 5 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want 5 jobs, 0 failed", stats)
	}
	if stats.Slots != wantSlots {
		t.Fatalf("stats.Slots = %d, want %d", stats.Slots, wantSlots)
	}
	if sims, err := rs.Sims(); err != nil || len(sims) != 5 {
		t.Fatalf("Sims() = %d results, err %v", len(sims), err)
	}
}

func TestPanicBecomesJobError(t *testing.T) {
	jobs := []sim.Config{quickJob(1), quickJob(2), quickJob(3)}
	jobs[1].Protocol = bomb{}
	rs, stats := runner.Run(context.Background(), jobs, runner.Options{Workers: 2})
	var je *runner.JobError
	if !errors.As(rs[1].Err, &je) {
		t.Fatalf("job 1 error = %v, want *JobError", rs[1].Err)
	}
	if je.Kind != runner.KindPanic || je.Index != 1 || len(je.Stack) == 0 {
		t.Fatalf("job 1 error = %+v, want KindPanic with stack", je)
	}
	if !errors.Is(rs[1].Err, runner.ErrPanic) {
		t.Fatal("errors.Is(err, ErrPanic) = false")
	}
	// The other jobs must be unaffected by their neighbor's panic.
	for _, i := range []int{0, 2} {
		if rs[i].Err != nil || rs[i].Res == nil {
			t.Fatalf("job %d did not survive the panic: %v", i, rs[i].Err)
		}
	}
	if stats.Failed != 1 {
		t.Fatalf("stats.Failed = %d, want 1", stats.Failed)
	}
	if rs.Err() == nil || !errors.Is(rs.Err(), runner.ErrPanic) {
		t.Fatalf("Results.Err() = %v, want the panic", rs.Err())
	}
	if _, err := rs.Sims(); err == nil {
		t.Fatal("Sims() ignored the failure")
	}
}

func TestTimeoutBecomesJobError(t *testing.T) {
	jobs := []sim.Config{quickJob(1), stuckJob(2), quickJob(3)}
	rs, _ := runner.Run(context.Background(), jobs, runner.Options{
		Workers: 3,
		Timeout: 50 * time.Millisecond,
	})
	var je *runner.JobError
	if !errors.As(rs[1].Err, &je) || je.Kind != runner.KindTimeout {
		t.Fatalf("stuck job error = %v, want KindTimeout", rs[1].Err)
	}
	if !errors.Is(rs[1].Err, runner.ErrTimeout) {
		t.Fatalf("timeout error %v does not unwrap to ErrTimeout", rs[1].Err)
	}
	// A runner-imposed timeout is not a caller interrupt: the JobError
	// contract reserves sim.ErrInterrupted for caller-supplied hooks.
	if errors.Is(rs[1].Err, sim.ErrInterrupted) {
		t.Fatalf("timeout error %v unwraps to sim.ErrInterrupted", rs[1].Err)
	}
	for _, i := range []int{0, 2} {
		if rs[i].Err != nil {
			t.Fatalf("job %d did not survive the timeout: %v", i, rs[i].Err)
		}
	}
}

func TestSlotLimitBecomesJobError(t *testing.T) {
	jobs := []sim.Config{quickJob(1), stuckJob(2)}
	rs, _ := runner.Run(context.Background(), jobs, runner.Options{
		Workers:   2,
		SlotLimit: 5000,
	})
	if rs[0].Err != nil {
		t.Fatalf("quick job tripped the slot limit: %v", rs[0].Err)
	}
	var je *runner.JobError
	if !errors.As(rs[1].Err, &je) || je.Kind != runner.KindSlotLimit {
		t.Fatalf("stuck job error = %v, want KindSlotLimit", rs[1].Err)
	}
	if !errors.Is(rs[1].Err, runner.ErrSlotLimit) {
		t.Fatal("errors.Is(err, ErrSlotLimit) = false")
	}
}

func TestCancelInterruptsRunningJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Two workers: one takes the stuck job, the other finishes the quick
	// job and cancels the batch from the progress hook, which must
	// interrupt the stuck job at its next poll.
	jobs := []sim.Config{stuckJob(1), quickJob(2)}
	rs, stats := runner.Run(ctx, jobs, runner.Options{
		Workers:  2,
		Progress: func(runner.Progress) { cancel() },
	})
	if rs[1].Err != nil {
		t.Fatalf("quick job failed: %v", rs[1].Err)
	}
	var je *runner.JobError
	if !errors.As(rs[0].Err, &je) || je.Kind != runner.KindCanceled {
		t.Fatalf("stuck job error = %v, want KindCanceled", rs[0].Err)
	}
	if !errors.Is(rs[0].Err, runner.ErrCanceled) || !errors.Is(rs[0].Err, context.Canceled) {
		t.Fatalf("cancel error %v does not unwrap to ErrCanceled and context.Canceled", rs[0].Err)
	}
	if errors.Is(rs[0].Err, sim.ErrInterrupted) {
		t.Fatalf("cancel error %v unwraps to sim.ErrInterrupted", rs[0].Err)
	}
	if stats.Failed != 1 {
		t.Fatalf("stats.Failed = %d, want 1", stats.Failed)
	}
}

func TestCancelSkipsUnstartedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := []sim.Config{quickJob(1), quickJob(2), quickJob(3)}
	first := true
	rs, stats := runner.Run(ctx, jobs, runner.Options{
		Workers: 1, // sequential, so jobs 1 and 2 have not started at cancel
		Progress: func(runner.Progress) {
			if first {
				first = false
				cancel()
			}
		},
	})
	if rs[0].Err != nil || rs[0].Res == nil {
		t.Fatalf("job 0 failed: %v", rs[0].Err)
	}
	for _, i := range []int{1, 2} {
		var je *runner.JobError
		if !errors.As(rs[i].Err, &je) || je.Kind != runner.KindCanceled {
			t.Fatalf("job %d error = %v, want KindCanceled", i, rs[i].Err)
		}
		if !errors.Is(rs[i].Err, context.Canceled) {
			t.Fatalf("job %d error %v does not unwrap to context.Canceled", i, rs[i].Err)
		}
		if rs[i].Res != nil {
			t.Fatalf("job %d ran after cancellation", i)
		}
	}
	if stats.Failed != 2 {
		t.Fatalf("stats.Failed = %d, want 2", stats.Failed)
	}
}

func TestProgressSnapshots(t *testing.T) {
	jobs := make([]sim.Config, 4)
	for i := range jobs {
		jobs[i] = quickJob(uint64(i + 1))
	}
	var snaps []runner.Progress
	rs, _ := runner.Run(context.Background(), jobs, runner.Options{
		Workers:  2,
		Progress: func(p runner.Progress) { snaps = append(snaps, p) },
	})
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != len(jobs) {
		t.Fatalf("progress fired %d times, want %d", len(snaps), len(jobs))
	}
	for i, p := range snaps {
		if p.Done != i+1 || p.Total != len(jobs) || p.Failed != 0 {
			t.Fatalf("snapshot %d = %+v", i, p)
		}
		if i > 0 && p.Slots < snaps[i-1].Slots {
			t.Fatalf("slots went backwards: %d after %d", p.Slots, snaps[i-1].Slots)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	rs, stats := runner.Run(context.Background(), nil, runner.Options{})
	if len(rs) != 0 || stats.Jobs != 0 || stats.Failed != 0 {
		t.Fatalf("empty batch: results=%d stats=%+v", len(rs), stats)
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a := runner.Seeds(7, 64)
	b := runner.Seeds(7, 64)
	seen := make(map[uint64]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Seeds not reproducible at %d: %d vs %d", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("duplicate seed %d at index %d", a[i], i)
		}
		seen[a[i]] = true
	}
	if c := runner.Seeds(8, 64); c[0] == a[0] && c[1] == a[1] {
		t.Fatal("different bases produced the same seed prefix")
	}
	jobs := []sim.Config{quickJob(0), quickJob(0)}
	runner.SeedJobs(jobs, 7)
	if jobs[0].Seed != a[0] || jobs[1].Seed != a[1] {
		t.Fatal("SeedJobs did not stamp Seeds(base, n)")
	}
}

package runner

// White-box tests for the retry backoff schedule: retryDelay must be a
// pure function of (base, index, attempt) — the certification that the
// jittered delays cannot depend on worker count, machine, or wall clock,
// preserving the runner's determinism story (satellite: deterministic
// retry jitter).

import (
	"testing"
	"time"
)

func TestRetryDelayDeterministic(t *testing.T) {
	base := 100 * time.Millisecond
	for index := 0; index < 50; index++ {
		for attempt := 0; attempt < 6; attempt++ {
			a := retryDelay(base, index, attempt)
			b := retryDelay(base, index, attempt)
			if a != b {
				t.Fatalf("retryDelay(%v, %d, %d) unstable: %v vs %v", base, index, attempt, a, b)
			}
		}
	}
}

func TestRetryDelayJitterRangeAndGrowth(t *testing.T) {
	base := 100 * time.Millisecond
	for index := 0; index < 20; index++ {
		for attempt := 0; attempt < 5; attempt++ {
			full := base << uint(attempt)
			d := retryDelay(base, index, attempt)
			if d < full/2 || d >= full {
				t.Fatalf("retryDelay(%v, %d, %d) = %v outside [%v, %v)", base, index, attempt, d, full/2, full)
			}
		}
	}
}

func TestRetryDelayDecorrelatesJobs(t *testing.T) {
	// Simultaneously retrying jobs must not share a delay: that is the
	// thundering-herd the jitter exists to break. With a [0.5, 1.0) spread
	// over 64 jobs at least some pairs must differ (all-equal means the
	// index is not mixed into the key).
	base := time.Second
	seen := make(map[time.Duration]bool)
	for index := 0; index < 64; index++ {
		seen[retryDelay(base, index, 0)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 jobs share %d distinct first-retry delays; jitter is not per-job", len(seen))
	}
}

func TestRetryDelayShiftCapAndZeroBase(t *testing.T) {
	if d := retryDelay(0, 3, 2); d != 0 {
		t.Fatalf("zero base gives %v, want 0", d)
	}
	// Huge attempt counts must not overflow the shift into a negative or
	// zero duration.
	if d := retryDelay(time.Millisecond, 0, 1<<20); d <= 0 {
		t.Fatalf("capped shift gives %v, want > 0", d)
	}
}

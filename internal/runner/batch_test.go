package runner_test

// Tests for the asynchronous Batch handle and the KindShutdown
// cancellation-cause classification it enables.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/sim"
)

func TestBatchWaitMatchesRun(t *testing.T) {
	jobs := []sim.Config{quickJob(1), quickJob(2), quickJob(3)}
	want, _ := runner.Run(context.Background(), jobs, runner.Options{Workers: 2})

	b := runner.Start(context.Background(), jobs, runner.Options{Workers: 2})
	rs, stats := b.Wait()
	if stats.Jobs != 3 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want 3 jobs 0 failed", stats)
	}
	for i := range rs {
		if rs[i].Err != nil {
			t.Fatalf("job %d failed: %v", i, rs[i].Err)
		}
		if rs[i].Res.TotalSlots != want[i].Res.TotalSlots {
			t.Fatalf("job %d diverged from synchronous Run", i)
		}
	}
	select {
	case <-b.Done():
	default:
		t.Fatal("Done() not closed after Wait returned")
	}
	// A second Wait returns the same values.
	rs2, _ := b.Wait()
	if len(rs2) != len(rs) {
		t.Fatalf("second Wait returned %d results", len(rs2))
	}
}

func TestBatchProgressSnapshot(t *testing.T) {
	jobs := []sim.Config{quickJob(1), quickJob(2)}
	var hookCalls int
	b := runner.Start(nil, jobs, runner.Options{
		Workers:  1,
		Progress: func(runner.Progress) { hookCalls++ },
	})
	b.Wait()
	if p := b.Progress(); p.Done != 2 || p.Total != 2 {
		t.Fatalf("final Progress = %+v, want Done=2 Total=2", p)
	}
	if hookCalls != 2 {
		t.Fatalf("caller hook ran %d times, want 2 (wrapping must preserve it)", hookCalls)
	}
}

// TestBatchCancelShutdownKind: cancelling with ErrShutdown classifies
// interrupted jobs as KindShutdown, distinguishable from a user cancel
// without string matching, while plain cancellation stays KindCanceled.
func TestBatchCancelShutdownKind(t *testing.T) {
	for _, tc := range []struct {
		name     string
		cause    error
		wantKind runner.Kind
	}{
		{"shutdown", runner.ErrShutdown, runner.KindShutdown},
		{"wrapped shutdown", fmt.Errorf("draining: %w", runner.ErrShutdown), runner.KindShutdown},
		{"user", errors.New("user clicked cancel"), runner.KindCanceled},
		{"nil", nil, runner.KindCanceled},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// One stuck job keeps the batch alive until Cancel; trailing
			// jobs never start and fail on the pre-start check, covering
			// both classification sites.
			jobs := []sim.Config{stuckJob(1), quickJob(2), quickJob(3)}
			b := runner.Start(context.Background(), jobs, runner.Options{Workers: 1})
			time.Sleep(10 * time.Millisecond)
			b.Cancel(tc.cause)
			rs, _ := b.Wait()

			var je *runner.JobError
			if !errors.As(rs[0].Err, &je) {
				t.Fatalf("job 0 error = %v, want *JobError", rs[0].Err)
			}
			if je.Kind != tc.wantKind {
				t.Fatalf("running job Kind = %v, want %v", je.Kind, tc.wantKind)
			}
			if !errors.As(rs[2].Err, &je) {
				t.Fatalf("job 2 error = %v, want *JobError", rs[2].Err)
			}
			if je.Kind != tc.wantKind {
				t.Fatalf("unstarted job Kind = %v, want %v", je.Kind, tc.wantKind)
			}
			// Every flavor of cancellation still satisfies ErrCanceled.
			if !errors.Is(rs[0].Err, runner.ErrCanceled) {
				t.Fatalf("cancelled job does not unwrap to ErrCanceled: %v", rs[0].Err)
			}
			if tc.wantKind == runner.KindShutdown && !errors.Is(rs[0].Err, runner.ErrShutdown) {
				t.Fatalf("shutdown job does not unwrap to ErrShutdown: %v", rs[0].Err)
			}
			if tc.cause == nil && !errors.Is(rs[0].Err, context.Canceled) {
				t.Fatalf("cause-less cancel lost context.Canceled: %v", rs[0].Err)
			}
		})
	}
}

func TestShutdownKindNotRetryable(t *testing.T) {
	if runner.KindShutdown.Retryable() {
		t.Fatal("KindShutdown must not be retryable")
	}
	if runner.KindShutdown.String() != "shutdown" {
		t.Fatalf("KindShutdown.String() = %q", runner.KindShutdown.String())
	}
}

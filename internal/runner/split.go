package runner

import "runtime"

// SplitParallelism divides a machine parallelism budget between the two
// layers that can use it: the batch runner's job-level workers
// (Options.Workers) and the engine's per-run shard workers
// (sim.Config.Workers). Job-level parallelism is perfectly independent, so
// it is filled first — up to the number of jobs available — and whatever
// budget remains multiplies into shard workers per job. budget <= 0 means
// GOMAXPROCS; jobs < 1 is treated as one job.
//
// The returned shardWorkers is always >= 1, i.e. the sharded engine mode.
// Callers wanting the historical serial engine (sim.Config.Workers == 0,
// a different but equally deterministic RNG discipline) should not use
// this helper: mixing the two modes across a sweep would make results
// depend on the split. batchWorkers * shardWorkers never exceeds
// max(budget, jobs-clamped minimums).
func SplitParallelism(budget, jobs int) (batchWorkers, shardWorkers int) {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if jobs < 1 {
		jobs = 1
	}
	batchWorkers = budget
	if jobs < batchWorkers {
		batchWorkers = jobs
	}
	shardWorkers = budget / batchWorkers
	if shardWorkers < 1 {
		shardWorkers = 1
	}
	return batchWorkers, shardWorkers
}

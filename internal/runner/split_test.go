package runner_test

import (
	"runtime"
	"testing"

	"ldcflood/internal/runner"
)

func TestSplitParallelism(t *testing.T) {
	cases := []struct {
		budget, jobs         int
		wantBatch, wantShard int
	}{
		{8, 16, 8, 1}, // more jobs than budget: all parallelism at the batch layer
		{8, 8, 8, 1},  // exact fit
		{8, 2, 2, 4},  // few jobs: leftover budget multiplies into shards
		{8, 3, 3, 2},  // non-divisible: floor, never oversubscribe
		{4, 1, 1, 4},  // single job: everything to the engine
		{1, 5, 1, 1},  // single core: serial everywhere
		{6, 0, 1, 6},  // jobs clamped to 1
	}
	for _, c := range cases {
		batch, shard := runner.SplitParallelism(c.budget, c.jobs)
		if batch != c.wantBatch || shard != c.wantShard {
			t.Errorf("SplitParallelism(%d, %d) = (%d, %d), want (%d, %d)",
				c.budget, c.jobs, batch, shard, c.wantBatch, c.wantShard)
		}
		if batch*shard > c.budget && c.budget >= 1 {
			t.Errorf("SplitParallelism(%d, %d) oversubscribes: %d * %d", c.budget, c.jobs, batch, shard)
		}
	}
	// budget <= 0 resolves to GOMAXPROCS.
	batch, shard := runner.SplitParallelism(0, 1)
	if batch != 1 || shard != runtime.GOMAXPROCS(0) {
		t.Errorf("SplitParallelism(0, 1) = (%d, %d), want (1, GOMAXPROCS=%d)",
			batch, shard, runtime.GOMAXPROCS(0))
	}
}

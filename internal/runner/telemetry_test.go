package runner_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/sim"
	"ldcflood/internal/telemetry"
)

// TestTelemetryCountersMatchStats: a batch with failures and retries must
// leave the registry agreeing with the returned Stats and the final
// Progress snapshot.
func TestTelemetryCountersMatchStats(t *testing.T) {
	jobs := make([]sim.Config, 6)
	for i := range jobs {
		jobs[i] = quickJob(uint64(300 + i))
	}
	jobs[2].Protocol = bomb{} // panics: retryable, fails after retries
	reg := telemetry.New()
	var last runner.Progress
	rs, stats := runner.Run(context.Background(), jobs, runner.Options{
		Workers:   3,
		Retries:   2,
		Telemetry: reg,
		Progress:  func(p runner.Progress) { last = p },
	})
	if rs[2].Err == nil {
		t.Fatal("bomb job unexpectedly succeeded")
	}
	snap := reg.Snapshot()
	want := map[string]int64{
		"runner.jobs.total":      int64(len(jobs)),
		"runner.jobs.done":       int64(len(jobs)),
		"runner.jobs.failed":     int64(stats.Failed),
		"runner.jobs.retries":    2,
		"runner.slots":           stats.Slots,
		"runner.job_wall.count":  int64(len(jobs)),
		"runner.journal.appends": 0,
		"runner.journal.hits":    0,
		"runner.queue.depth":     0,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("%s = %d, want %d", k, snap[k], v)
		}
	}
	if snap["runner.job_wall.total_ns"] <= 0 {
		t.Errorf("runner.job_wall.total_ns = %d, want > 0", snap["runner.job_wall.total_ns"])
	}
	// The final Progress snapshot and the registry come from one
	// observation: they must agree exactly.
	if last.Done != len(jobs) || int64(last.Done) != snap["runner.jobs.done"] {
		t.Errorf("final Progress.Done = %d, registry runner.jobs.done = %d", last.Done, snap["runner.jobs.done"])
	}
	if last.Slots != snap["runner.slots"] {
		t.Errorf("final Progress.Slots = %d, registry runner.slots = %d", last.Slots, snap["runner.slots"])
	}
	if last.ETA != 0 {
		t.Errorf("final Progress.ETA = %v, want 0", last.ETA)
	}
	if last.SlotsPerSec <= 0 {
		t.Errorf("final Progress.SlotsPerSec = %v, want > 0", last.SlotsPerSec)
	}
}

// TestTelemetryJournalCounters: appends on the first (interrupted-free)
// run, hits on the resume.
func TestTelemetryJournalCounters(t *testing.T) {
	jobs := make([]sim.Config, 4)
	for i := range jobs {
		jobs[i] = quickJob(uint64(500 + i))
	}
	path := filepath.Join(t.TempDir(), "batch.journal")
	open := func(resume bool) *runner.Journal {
		j, err := runner.OpenJournal(path, "tel-journal", resume)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	reg := telemetry.New()
	j := open(false)
	if rs, _ := runner.Run(context.Background(), jobs, runner.Options{Journal: j, Telemetry: reg}); rs.Err() != nil {
		t.Fatal(rs.Err())
	}
	j.Close()
	snap := reg.Snapshot()
	if snap["runner.journal.appends"] != int64(len(jobs)) || snap["runner.journal.hits"] != 0 {
		t.Fatalf("first run: appends=%d hits=%d, want %d/0",
			snap["runner.journal.appends"], snap["runner.journal.hits"], len(jobs))
	}
	reg2 := telemetry.New()
	j2 := open(true)
	if rs, _ := runner.Run(context.Background(), jobs, runner.Options{Journal: j2, Telemetry: reg2}); rs.Err() != nil {
		t.Fatal(rs.Err())
	}
	j2.Close()
	snap2 := reg2.Snapshot()
	if snap2["runner.journal.appends"] != 0 || snap2["runner.journal.hits"] != int64(len(jobs)) {
		t.Fatalf("resume: appends=%d hits=%d, want 0/%d",
			snap2["runner.journal.appends"], snap2["runner.journal.hits"], len(jobs))
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryConcurrentBatches: two batches sharing one registry under
// the race detector; totals must sum.
func TestTelemetryConcurrentBatches(t *testing.T) {
	reg := telemetry.New()
	mk := func(base uint64, n int) []sim.Config {
		jobs := make([]sim.Config, n)
		for i := range jobs {
			jobs[i] = quickJob(base + uint64(i))
			jobs[i].Telemetry = reg // sim counters share the registry too
		}
		return jobs
	}
	errs := make(chan error, 2)
	for _, base := range []uint64{700, 800} {
		go func(base uint64) {
			rs, _ := runner.Run(context.Background(), mk(base, 5), runner.Options{Workers: 2, Telemetry: reg})
			errs <- rs.Err()
		}(base)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap["runner.jobs.total"] != 10 || snap["runner.jobs.done"] != 10 {
		t.Fatalf("shared registry totals: total=%d done=%d, want 10/10",
			snap["runner.jobs.total"], snap["runner.jobs.done"])
	}
	if snap["sim.runs.completed"] != 10 {
		t.Fatalf("sim.runs.completed = %d, want 10", snap["sim.runs.completed"])
	}
}

// TestProgressPrinter: throttling, format, and the guaranteed final line.
func TestProgressPrinter(t *testing.T) {
	var sb strings.Builder
	hook := runner.ProgressPrinter(&sb, time.Hour) // throttle everything but the final line
	for d := 1; d <= 3; d++ {
		hook(runner.Progress{Done: d, Total: 3, Slots: int64(d * 100), Elapsed: time.Duration(d) * time.Second, SlotsPerSec: 100})
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("printed %d lines, want 2 (first + final):\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "jobs=1/3 ") {
		t.Errorf("first line = %q, want jobs=1/3 prefix", lines[0])
	}
	if !strings.Contains(lines[1], "jobs=3/3") || !strings.Contains(lines[1], "slots=300") {
		t.Errorf("final line = %q, want jobs=3/3 and slots=300", lines[1])
	}

	sb.Reset()
	every := runner.ProgressPrinter(&sb, 0) // unthrottled: every completion prints
	for d := 1; d <= 3; d++ {
		every(runner.Progress{Done: d, Total: 3})
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Fatalf("unthrottled printer wrote %d lines, want 3", got)
	}
}

package runner

// Checkpoint/resume for long batches. A Journal is a JSON-lines file: one
// header line identifying the batch, then one record per completed job.
// Attached to Options.Journal, the runner appends every successful result
// as it lands and serves already-journaled jobs without re-simulating, so
// a killed batch resumed against the same journal restarts where it left
// off — and, because sim.Run is deterministic and sim.Result survives a
// JSON round trip losslessly, the resumed batch's final output is
// byte-identical to an uninterrupted run.
//
// The header's key ties a journal to one specific batch (the caller
// encodes whatever defines it: grid parameters, seeds, fault spec, ...).
// Resuming with a different key fails loudly instead of silently mixing
// results from a different sweep.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"ldcflood/internal/sim"
)

// journalMagic identifies the file format in the header line.
const journalMagic = "ldcflood-runner"

// journalHeader is the first line of a journal file.
type journalHeader struct {
	Journal string `json:"journal"`
	V       int    `json:"v"`
	Key     string `json:"key"`
}

// journalRecord is one completed job.
type journalRecord struct {
	Index int         `json:"index"`
	Res   *sim.Result `json:"res"`
}

// Journal checkpoints one batch's completed jobs to a JSON-lines file. Use
// OpenJournal to create or resume one; it is safe for concurrent use by
// the runner's workers.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	done map[int]*sim.Result
	err  error // first write failure, latched
}

// OpenJournal creates (resume=false) or resumes (resume=true) a journal at
// path for the batch identified by key.
//
// With resume=false any existing file is truncated and a fresh header
// written. With resume=true an existing file's header must carry the same
// key — a mismatch means the journal belongs to a different batch and is
// an error — and its records become the completed set; a partial trailing
// line (the run was killed mid-write) is discarded. Resuming a missing or
// empty file starts a fresh journal.
func OpenJournal(path, key string, resume bool) (*Journal, error) {
	j := &Journal{done: make(map[int]*sim.Result)}
	var keep int64
	if resume {
		n, err := j.load(path, key)
		if err != nil {
			return nil, err
		}
		keep = n
	}
	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	if len(j.done) == 0 {
		// Fresh journal (or resumed an empty/missing file): ensure exactly
		// one header line.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: journal: %w", err)
		}
		if err := j.writeLine(journalHeader{Journal: journalMagic, V: 1, Key: key}); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		// Drop a torn trailing line (the previous run was killed mid-write)
		// so the next record starts on a fresh line instead of fusing with
		// the fragment; O_APPEND writes land at the new end of file.
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: journal: %w", err)
		}
	}
	return j, nil
}

// load reads an existing journal's header and records into j.done. It
// returns the byte offset just past the last complete ('\n'-terminated)
// line, which the caller truncates to before appending.
func (j *Journal) load(path, key string) (int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) || (err == nil && len(data) == 0) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("runner: journal: %w", err)
	}
	keep := int64(0)
	for i := len(data) - 1; i >= 0; i-- {
		if data[i] == '\n' {
			keep = int64(i + 1)
			break
		}
	}
	if keep == 0 {
		// No complete line at all: the previous run was killed mid-way
		// through the very first write, leaving a torn header. As long as
		// the fragment is recognizably ours, treat the file as empty — the
		// caller truncates and rewrites a fresh header — instead of failing
		// resume unrecoverably. Anything else is not a journal file.
		if tornHeader(data) {
			return 0, nil
		}
		return 0, fmt.Errorf("runner: journal %s: not a journal file", path)
	}
	lines := splitLines(data)
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Journal != journalMagic {
		return 0, fmt.Errorf("runner: journal %s: not a journal file", path)
	}
	if hdr.V != 1 {
		return 0, fmt.Errorf("runner: journal %s: unsupported version %d", path, hdr.V)
	}
	if hdr.Key != key {
		return 0, fmt.Errorf("runner: journal %s belongs to a different batch (key %q, want %q)",
			path, hdr.Key, key)
	}
	for _, line := range lines[1:] {
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Res == nil {
			// A torn trailing line from a killed run; the job re-runs.
			continue
		}
		j.done[rec.Index] = rec.Res
	}
	return keep, nil
}

// tornHeader reports whether data is a torn prefix of a journal header
// line — i.e. the bytes so far agree with how a header serializes
// ({"journal":"ldcflood-runner",...). The mutual-prefix check keeps the
// guard against clobbering arbitrary non-journal files intact even when
// the crash happened within the first few bytes.
func tornHeader(data []byte) bool {
	sig := []byte(`{"journal":"` + journalMagic + `"`)
	n := len(sig)
	if len(data) < n {
		n = len(data)
	}
	return string(data[:n]) == string(sig[:n])
}

// ReadJournalKey reads the batch key from the journal header at path
// without loading its records — callers use it to explain a key mismatch
// (e.g. cmd/sweep's legacy-journal detection) or to inspect a journal's
// provenance.
func ReadJournalKey(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("runner: journal: %w", err)
	}
	lines := splitLines(data)
	if len(lines) == 0 {
		return "", fmt.Errorf("runner: journal %s: empty file", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Journal != journalMagic {
		return "", fmt.Errorf("runner: journal %s: not a journal file", path)
	}
	return hdr.Key, nil
}

// splitLines splits data on '\n', dropping a trailing empty fragment.
func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			out = append(out, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:]) // torn final line, no newline
	}
	return out
}

// writeLine appends one JSON document plus newline and flushes it, so a
// kill between jobs never tears a record.
func (j *Journal) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	return nil
}

// Done returns the journaled result for job i, if present.
func (j *Journal) Done(i int) (*sim.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.done[i]
	return res, ok
}

// Completed returns how many jobs the journal already holds.
func (j *Journal) Completed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// record appends one successful job. Write failures are latched into Err
// rather than failing the batch: the simulation results are still good,
// only resumability is degraded.
func (j *Journal) record(i int, res *sim.Result) {
	j.Record(i, res)
}

// Record appends one completed job's result, idempotently by index: a
// job already journaled is left untouched and Record reports false. This
// is the write path for callers that land results out of band — the
// distributed lease protocol journals worker completions through it —
// and shares the crash-safety contract with the runner's own appends
// (flushed line-at-a-time; write failures latch into Err instead of
// failing the caller).
func (j *Journal) Record(i int, res *sim.Result) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return false
	}
	if _, ok := j.done[i]; ok {
		return false
	}
	if err := j.writeLine(journalRecord{Index: i, Res: res}); err != nil {
		j.err = err
		return false
	}
	j.done[i] = res
	return true
}

// Err returns the first journal write failure, or nil. Check it after the
// batch: a non-nil value means the journal is incomplete and a future
// --resume would re-run the affected jobs.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

package runner

import (
	"ldcflood/internal/rngutil"
	"ldcflood/internal/sim"
)

// Seeds derives n decorrelated job seeds from one base seed. Seed i is a
// pure function of (base, i) — independent of worker count and execution
// order — so a batch seeded this way is reproducible by construction: the
// foundation of the runner's workers=1 ≡ workers=N guarantee.
func Seeds(base uint64, n int) []uint64 {
	root := rngutil.New(base).SubName("runner")
	out := make([]uint64, n)
	for i := range out {
		out[i] = root.Sub(uint64(i)).Uint64()
	}
	return out
}

// SeedJobs stamps every job's Seed from Seeds(base, len(jobs)) — one batch,
// one seed policy — and returns the slice for chaining. Any Seed already
// set on a job is overwritten.
func SeedJobs(jobs []sim.Config, base uint64) []sim.Config {
	for i, s := range Seeds(base, len(jobs)) {
		jobs[i].Seed = s
	}
	return jobs
}

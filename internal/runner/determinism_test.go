package runner_test

// The headline determinism property: a batch's aggregate output is a pure
// function of its job slice, so runner.Run with workers=1 and workers=8
// must produce byte-identical metrics.Aggregate values. This is what lets
// every sweep in the repository parallelize freely without losing
// reproducibility.

import (
	"context"
	"fmt"
	"testing"

	"ldcflood/internal/flood"
	"ldcflood/internal/metrics"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/runner"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

func TestDeterminismAcrossWorkers(t *testing.T) {
	combos := []struct {
		name  string
		graph *topology.Graph
		proto string
	}{
		{"line-opt", topology.Line(12, 0.9), "opt"},
		{"grid-dbao", topology.Grid(4, 4, 0.85), "dbao"},
		{"ring-of", topology.Ring(16, 0.9), "of"},
		{"complete-naive", topology.Complete(8, 0.7), "naive"},
	}
	const runs = 6
	for _, c := range combos {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			build := func() []sim.Config {
				jobs := make([]sim.Config, runs)
				for i, seed := range runner.Seeds(42, runs) {
					p, err := flood.New(c.proto)
					if err != nil {
						t.Fatal(err)
					}
					jobs[i] = sim.Config{
						Graph:     c.graph,
						Schedules: schedule.AssignUniform(c.graph.N(), 5, rngutil.New(seed).SubName("schedule")),
						Protocol:  p,
						M:         4,
						Coverage:  0.95,
						Seed:      seed,
					}
				}
				return jobs
			}
			aggregate := func(workers int) string {
				rs, stats := runner.Run(context.Background(), build(), runner.Options{Workers: workers})
				sims, err := rs.Sims()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if stats.Failed != 0 || stats.Jobs != runs {
					t.Fatalf("workers=%d: stats %+v", workers, stats)
				}
				agg, err := metrics.Combine(sims)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				// %#v dumps every exported field, so equal strings mean
				// byte-identical aggregates (NaNs render identically too,
				// which reflect.DeepEqual would reject).
				return fmt.Sprintf("%#v", *agg)
			}
			sequential := aggregate(1)
			parallel := aggregate(8)
			if sequential != parallel {
				t.Errorf("workers=1 and workers=8 diverged:\n  seq: %s\n  par: %s", sequential, parallel)
			}
			// And the property is stable across repetition, not a fluke of
			// one interleaving.
			if again := aggregate(8); again != parallel {
				t.Errorf("two workers=8 batches diverged:\n  1st: %s\n  2nd: %s", parallel, again)
			}
		})
	}
}

// TestDeterminismPerJobResults sharpens the aggregate property: every
// individual job result must match a direct, single-threaded sim.Run of
// the same config, field for field.
func TestDeterminismPerJobResults(t *testing.T) {
	g := topology.Grid(3, 5, 0.9)
	build := func() []sim.Config {
		jobs := make([]sim.Config, 5)
		for i, seed := range runner.Seeds(9, len(jobs)) {
			p, err := flood.New("dbao")
			if err != nil {
				t.Fatal(err)
			}
			jobs[i] = sim.Config{
				Graph:     g,
				Schedules: schedule.AssignUniform(g.N(), 4, rngutil.New(seed).SubName("schedule")),
				Protocol:  p,
				M:         3,
				Coverage:  1,
				Seed:      seed,
			}
		}
		return jobs
	}
	rs, _ := runner.Run(context.Background(), build(), runner.Options{Workers: 4})
	direct := build()
	for i := range direct {
		want, err := sim.Run(direct[i])
		if err != nil {
			t.Fatal(err)
		}
		got := rs[i].Res
		if rs[i].Err != nil {
			t.Fatalf("job %d: %v", i, rs[i].Err)
		}
		if fmt.Sprintf("%#v", *got) != fmt.Sprintf("%#v", *want) {
			t.Fatalf("job %d diverged from direct run", i)
		}
	}
}

package runner

// Batch is the asynchronous job handle over Run. Callers that own the
// batch loop (cmd/sweep, cmd/figures) keep calling Run directly; callers
// that schedule batches on behalf of others — internal/service's job API,
// where an HTTP handler must cancel or inspect a batch it did not start —
// use Start and hold the returned *Batch.

import (
	"context"
	"sync"

	"ldcflood/internal/sim"
)

// Batch is a handle on a batch started with Start: it can be cancelled
// (with a cause), waited on, and inspected for live progress without
// owning the goroutine that runs it. All methods are safe for concurrent
// use.
type Batch struct {
	cancel context.CancelCauseFunc
	done   chan struct{}

	mu   sync.Mutex
	last Progress

	// results/stats are written once, before done closes; Wait
	// synchronizes on done so readers never race the writer.
	results Results
	stats   Stats
}

// Start launches Run(ctx, jobs, opts) on its own goroutine and returns a
// handle to it. The batch observes ctx like Run does; Cancel adds a
// second, cause-carrying cancellation path. The handle wraps
// opts.Progress (the caller's hook, when set, still runs) to keep the
// latest snapshot readable via Progress.
func Start(ctx context.Context, jobs []sim.Config, opts Options) *Batch {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancelCause(ctx)
	b := &Batch{cancel: cancel, done: make(chan struct{})}
	hook := opts.Progress
	opts.Progress = func(p Progress) {
		b.mu.Lock()
		b.last = p
		b.mu.Unlock()
		if hook != nil {
			hook(p)
		}
	}
	go func() {
		defer close(b.done)
		// Release the context's resources once the batch is over, keeping
		// the first cancellation cause if one was delivered.
		defer cancel(nil)
		b.results, b.stats = Run(ctx, jobs, opts)
	}()
	return b
}

// Cancel cancels the batch with the given cause. Pass ErrShutdown (or an
// error wrapping it) to mark the interruption as a drain — affected jobs
// then fail with KindShutdown instead of KindCanceled. A nil cause is an
// ordinary cancellation (KindCanceled, unwrapping to context.Canceled).
// Cancel after completion, or a second Cancel, is a no-op.
func (b *Batch) Cancel(cause error) { b.cancel(cause) }

// Done returns a channel closed when the batch has finished (all jobs
// completed, failed, or cancelled).
func (b *Batch) Done() <-chan struct{} { return b.done }

// Wait blocks until the batch finishes and returns what Run returned: one
// Result per job in input order, plus batch statistics. It may be called
// from any number of goroutines; all receive the same values.
func (b *Batch) Wait() (Results, Stats) {
	<-b.done
	return b.results, b.stats
}

// Progress returns the most recent progress snapshot, or the zero
// Progress before the first job lands.
func (b *Batch) Progress() Progress {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last
}

// Package runner executes batches of simulation jobs on a bounded worker
// pool with deterministic, input-ordered results.
//
// Every multi-run workload in this repository — the Fig. 9-11 evaluation
// sweeps, cmd/sweep's protocol × duty × seed grid, Monte-Carlo repetition
// batches — has the same shape: many independent sim.Config jobs whose
// outputs are aggregated afterwards. The runner makes that shape cheap and
// safe:
//
//   - Bounded parallelism. Options.Workers (default GOMAXPROCS) caps
//     concurrent simulations instead of spawning one goroutine per job.
//   - Determinism. sim.Run is bit-for-bit reproducible for a given Config,
//     the runner injects no randomness, and results land in input order,
//     so a batch's output is a pure function of its job slice — identical
//     for workers=1 and workers=N. Seeds derives decorrelated per-job
//     seeds from one base seed to keep it that way.
//   - Fault isolation. A job that panics, exceeds its wall-clock or slot
//     budget, or is overtaken by context cancellation becomes a typed
//     *JobError in its result slot; the rest of the batch completes.
//   - Observability. Options.Progress streams per-job completion
//     snapshots (jobs done, failures, slots simulated, elapsed time, ETA,
//     throughput) that cmd/sweep and cmd/figures surface, and
//     Options.Telemetry feeds the same figures into a live
//     telemetry.Registry for the -debug-addr endpoints.
//
// See docs/RUNNER.md for the full semantics.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ldcflood/internal/rngutil"
	"ldcflood/internal/sim"
	"ldcflood/internal/telemetry"
)

// Options configures a batch run. The zero value is valid: GOMAXPROCS
// workers, no timeout, no slot limit, no progress hook.
type Options struct {
	// Workers bounds how many jobs simulate concurrently; <= 0 uses
	// runtime.GOMAXPROCS(0). The worker count affects wall-clock time
	// only, never results.
	Workers int
	// Timeout is the per-job wall-clock budget. A job that exceeds it is
	// interrupted and reported as a *JobError of kind KindTimeout while
	// the rest of the batch keeps running. 0 means no limit. Because wall
	// clocks depend on machine load, leave Timeout zero when byte-identical
	// batch output matters more than bounded latency.
	Timeout time.Duration
	// SlotLimit is the per-job simulated-slot budget. Unlike
	// sim.Config.MaxSlots — which ends a run gracefully with
	// Completed=false — exceeding SlotLimit fails the job with a *JobError
	// of kind KindSlotLimit. Being measured in simulated time, it is
	// deterministic, unlike Timeout. 0 means no limit.
	SlotLimit int64
	// Progress, when non-nil, is called after every job finishes (success
	// or failure). Calls are serialized by the runner, so the hook need
	// not be safe for concurrent use; it runs on worker goroutines and
	// must be fast.
	Progress func(Progress)
	// Retries is how many times a job whose failure kind is retryable
	// (Kind.Retryable: timeout, panic) is re-run before its *JobError is
	// recorded. 0 disables retries. Retries never change successful
	// results — sim.Run is deterministic — they only give transiently
	// failing jobs more chances.
	Retries int
	// RetryBackoff is the wait before the first retry; each further retry
	// doubles it (exponential backoff), scaled by a deterministic jitter
	// factor in [0.5, 1.0) seeded per job index — simultaneous retries
	// across a batch (or across distributed workers hammering one daemon)
	// de-synchronize instead of thundering-herding, and the delays are a
	// pure function of (backoff, index, attempt), identical for every
	// worker count. The wait is context-aware: batch cancellation ends it
	// immediately. 0 retries back to back.
	RetryBackoff time.Duration
	// Journal, when non-nil, checkpoints the batch: each successful job is
	// appended to the journal as it completes, and jobs already present
	// (from a previous, interrupted run of the same batch) are served from
	// it without simulating. See OpenJournal.
	Journal *Journal
	// Telemetry, when non-nil, receives live batch counters and gauges in
	// the "runner." namespace (see docs/OBSERVABILITY.md for the catalog).
	// The registry may be shared across concurrent batches — counters
	// accumulate; gauges reflect the batch that updated them last. The ETA
	// and throughput gauges are computed from the same state as the
	// matching Progress fields, so the two surfaces always agree. Telemetry
	// never affects results.
	Telemetry *telemetry.Registry
}

// Progress is a snapshot of batch progress passed to Options.Progress. All
// fields come from one consistent observation: ETA and SlotsPerSec are
// derived from Done, Slots, and Elapsed inside the same critical section
// that produced them (and that feeds the telemetry gauges).
type Progress struct {
	Done        int           // jobs finished so far, failures included
	Failed      int           // jobs finished with a *JobError
	Total       int           // batch size
	Slots       int64         // simulated slots completed so far
	Elapsed     time.Duration // wall-clock time since the batch started
	ETA         time.Duration // projected time to batch completion; 0 until the first job lands and after the last
	SlotsPerSec float64       // simulated-slot throughput so far
}

// Stats summarizes a finished batch.
type Stats struct {
	Jobs   int           // batch size
	Failed int           // jobs that ended in a *JobError
	Slots  int64         // simulated slots across all successful jobs
	Wall   time.Duration // wall-clock time for the whole batch
}

// Result is one job's outcome. Exactly one of Res and Err is non-nil.
type Result struct {
	Index int         // position in the input slice
	Res   *sim.Result // simulation output, nil on failure
	Err   error       // nil, or a *JobError describing the failure
}

// Results is a batch outcome in input order: rs[i] belongs to jobs[i].
type Results []Result

// Err returns the first job failure in input order, or nil.
func (rs Results) Err() error {
	for i := range rs {
		if rs[i].Err != nil {
			return rs[i].Err
		}
	}
	return nil
}

// Sims unwraps the per-job simulation results, in input order, failing on
// the batch's first job error.
func (rs Results) Sims() ([]*sim.Result, error) {
	if err := rs.Err(); err != nil {
		return nil, err
	}
	out := make([]*sim.Result, len(rs))
	for i := range rs {
		out[i] = rs[i].Res
	}
	return out, nil
}

// Run executes jobs on a bounded worker pool and returns one Result per
// job in input order, plus batch statistics.
//
// Determinism: results depend only on the job slice — not on
// Options.Workers, machine load, or completion order — because each job's
// randomness is fully determined by its Config and the runner assigns
// results by input index. Options.Timeout is the one escape hatch: it
// trades that guarantee for bounded latency.
//
// Fault isolation: a job that panics, exceeds Timeout or SlotLimit, or is
// overtaken by ctx cancellation yields a *JobError in its slot; other jobs
// are unaffected. Once ctx is cancelled, running jobs are interrupted at
// their next poll and jobs not yet started fail immediately without
// simulating anything.
func Run(ctx context.Context, jobs []sim.Config, opts Options) (Results, Stats) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make(Results, len(jobs))
	start := time.Now()
	var tel *runTel
	if opts.Telemetry != nil {
		tel = newRunTel(opts.Telemetry, len(jobs))
	}
	var (
		mu     sync.Mutex
		done   int
		failed int
		slots  int64
		next   atomic.Int64
		wg     sync.WaitGroup
	)
	finish := func(i int, res *sim.Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = Result{Index: i, Res: res, Err: err}
		done++
		if err != nil {
			failed++
		}
		var jobSlots int64
		if res != nil {
			jobSlots = res.TotalSlots
			slots += jobSlots
		}
		if tel == nil && opts.Progress == nil {
			return
		}
		// One observation feeds both surfaces (see Progress): the hook and
		// the registry can never disagree on jobs done or the ETA.
		elapsed := time.Since(start)
		eta, rate := estimate(done, len(jobs), slots, elapsed)
		if tel != nil {
			tel.jobsDone.Inc()
			if err != nil {
				tel.jobsFailed.Inc()
			}
			tel.slots.Add(jobSlots)
			tel.queueDepth.Set(int64(len(jobs) - done))
			tel.etaSeconds.Set(int64(eta / time.Second))
			tel.slotsPerSec.Set(int64(rate))
		}
		if opts.Progress != nil {
			opts.Progress(Progress{
				Done: done, Failed: failed, Total: len(jobs),
				Slots: slots, Elapsed: elapsed,
				ETA: eta, SlotsPerSec: rate,
			})
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if opts.Journal != nil {
					if res, ok := opts.Journal.Done(i); ok {
						if tel != nil {
							tel.jrnHits.Inc()
						}
						finish(i, res, nil)
						continue
					}
				}
				if ctx.Err() != nil {
					finish(i, nil, &JobError{Index: i, Kind: cancelKind(ctx), Err: cancelCause(ctx)})
					continue
				}
				jobStart := time.Now()
				res, err := runJob(ctx, i, jobs[i], opts)
				for attempt := 0; err != nil && attempt < opts.Retries && retryable(err); attempt++ {
					if !backoff(ctx, retryDelay(opts.RetryBackoff, i, attempt)) {
						break
					}
					if tel != nil {
						tel.retries.Inc()
					}
					res, err = runJob(ctx, i, jobs[i], opts)
				}
				if tel != nil {
					// One observation per job, retries and backoff included:
					// the timer answers "what does a job cost this batch",
					// not "how fast is one sim.Run".
					tel.jobWall.Observe(time.Since(jobStart))
				}
				if err == nil && opts.Journal != nil {
					opts.Journal.record(i, res)
					if tel != nil {
						tel.jrnAppends.Inc()
					}
				}
				finish(i, res, err)
			}
		}()
	}
	wg.Wait()
	return results, Stats{Jobs: len(jobs), Failed: failed, Slots: slots, Wall: time.Since(start)}
}

// retryable reports whether err is a *JobError of a retryable kind.
func retryable(err error) bool {
	var je *JobError
	return errors.As(err, &je) && je.Kind.Retryable()
}

// cancelKind classifies a context cancellation: KindShutdown when the
// cancellation cause wraps ErrShutdown (a drain, see Batch.Cancel),
// KindCanceled for every other cancellation or deadline.
func cancelKind(ctx context.Context) Kind {
	if errors.Is(context.Cause(ctx), ErrShutdown) {
		return KindShutdown
	}
	return KindCanceled
}

// cancelCause is the error recorded as a cancelled job's underlying cause:
// the context's cancellation cause when one was supplied (so a drain's
// ErrShutdown or a caller's custom reason survives into the JobError), the
// plain context error otherwise. For a cause-less cancellation
// context.Cause returns context.Canceled itself, preserving the historical
// errors.Is(err, context.Canceled) behavior.
func cancelCause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// retryDelay computes the wait before retry attempt (0-based) of job
// index: RetryBackoff doubled per prior attempt (capped at 16 doublings
// so the shift can never overflow), scaled by rngutil.Jitter keyed on
// (index, attempt). A pure function of its arguments — the schedule of
// delays is identical for every Options.Workers value and across
// machines, preserving the runner's determinism story.
func retryDelay(base time.Duration, index, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt
	if shift > 16 {
		shift = 16
	}
	return rngutil.Jitter(base<<uint(shift), uint64(index)<<20^uint64(attempt))
}

// backoff sleeps for d (0 returns immediately) unless the context ends
// first; it reports whether the caller should proceed with the retry.
func backoff(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// pollEvery is how many slots pass between the comparatively expensive
// context and clock checks inside the engine's Interrupt hook. The slot
// limit is checked every slot so it stays exact.
const pollEvery = 64

// runJob executes one job with panic recovery and interrupt plumbing.
func runJob(ctx context.Context, index int, cfg sim.Config, opts Options) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &JobError{
				Index: index,
				Kind:  KindPanic,
				Err:   fmt.Errorf("panic: %v", r),
				Stack: debug.Stack(),
			}
		}
	}()

	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	// kind records why our hook aborted the run; it stays KindSim when the
	// engine fails on its own (or a caller-supplied hook fires).
	kind := KindSim
	prev := cfg.Interrupt
	var polls int64
	cfg.Interrupt = func(slot int64) bool {
		if prev != nil && prev(slot) {
			return true
		}
		if opts.SlotLimit > 0 && slot >= opts.SlotLimit {
			kind = KindSlotLimit
			return true
		}
		if polls++; polls%pollEvery != 0 {
			return false
		}
		if ctx.Err() != nil {
			kind = cancelKind(ctx)
			return true
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			kind = KindTimeout
			return true
		}
		return false
	}

	r, err := sim.Run(cfg)
	if err != nil {
		// When the abort came from the runner's own hook, replace the
		// engine's interrupt error as the cause: a runner-imposed timeout or
		// budget is not a sim.ErrInterrupted condition (that sentinel is for
		// caller-supplied Interrupt hooks — see the JobError contract).
		switch kind {
		case KindTimeout:
			err = fmt.Errorf("exceeded wall-clock budget %v", opts.Timeout)
		case KindSlotLimit:
			err = fmt.Errorf("exceeded slot budget %d", opts.SlotLimit)
		case KindCanceled, KindShutdown:
			err = cancelCause(ctx)
		}
		return nil, &JobError{Index: index, Kind: kind, Err: err}
	}
	return r, nil
}

package runner

import (
	"errors"
	"fmt"
)

// Kind classifies why a job failed.
type Kind int

const (
	// KindSim: the simulation engine returned an ordinary error (invalid
	// config, a protocol contract violation, or a caller-supplied
	// Interrupt hook firing).
	KindSim Kind = iota
	// KindPanic: the job panicked; JobError.Stack holds the trace.
	KindPanic
	// KindTimeout: the job exceeded Options.Timeout.
	KindTimeout
	// KindSlotLimit: the job exceeded Options.SlotLimit.
	KindSlotLimit
	// KindCanceled: the batch context was cancelled before or while the
	// job ran.
	KindCanceled
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSim:
		return "sim error"
	case KindPanic:
		return "panic"
	case KindTimeout:
		return "timeout"
	case KindSlotLimit:
		return "slot limit"
	case KindCanceled:
		return "canceled"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Sentinel errors matched by errors.Is against a *JobError, one per
// abnormal Kind.
var (
	ErrPanic     = errors.New("runner: job panicked")
	ErrTimeout   = errors.New("runner: job exceeded wall-clock timeout")
	ErrSlotLimit = errors.New("runner: job exceeded slot limit")
	ErrCanceled  = errors.New("runner: batch canceled")
)

// JobError reports one failed job. It wraps both the sentinel for its Kind
// and the underlying cause, so errors.Is works against either (e.g.
// errors.Is(err, runner.ErrTimeout), errors.Is(err, context.Canceled)).
type JobError struct {
	// Index is the job's position in the input slice.
	Index int
	// Kind classifies the failure.
	Kind Kind
	// Err is the underlying cause: the engine error, the recovered panic
	// value, or the context error.
	Err error
	// Stack is the goroutine stack captured at recovery; KindPanic only.
	Stack []byte
}

// Error implements error.
func (e *JobError) Error() string {
	return fmt.Sprintf("runner: job %d: %s: %v", e.Index, e.Kind, e.Err)
}

// Unwrap exposes the Kind sentinel and the underlying cause.
func (e *JobError) Unwrap() []error {
	var out []error
	switch e.Kind {
	case KindPanic:
		out = append(out, ErrPanic)
	case KindTimeout:
		out = append(out, ErrTimeout)
	case KindSlotLimit:
		out = append(out, ErrSlotLimit)
	case KindCanceled:
		out = append(out, ErrCanceled)
	}
	if e.Err != nil {
		out = append(out, e.Err)
	}
	return out
}

package runner

import (
	"errors"
	"fmt"
)

// Kind classifies why a job failed.
type Kind int

const (
	// KindSim: the simulation engine returned an ordinary error (invalid
	// config, a protocol contract violation, or a caller-supplied
	// Interrupt hook firing).
	KindSim Kind = iota
	// KindPanic: the job panicked; JobError.Stack holds the trace.
	KindPanic
	// KindTimeout: the job exceeded Options.Timeout.
	KindTimeout
	// KindSlotLimit: the job exceeded Options.SlotLimit.
	KindSlotLimit
	// KindCanceled: the batch context was cancelled before or while the
	// job ran.
	KindCanceled
	// KindShutdown: the batch context was cancelled with ErrShutdown as
	// its cause (context.WithCancelCause) — the process is draining, not
	// the user abandoning the job. Callers that checkpoint work (a
	// journal-backed job queue) use this to requeue the job for resume
	// instead of marking it terminally cancelled.
	KindShutdown
)

// Retryable reports whether failures of this kind may succeed on a
// re-run and are therefore worth retrying (Options.Retries):
//
//   - KindTimeout: yes — wall clocks depend on machine load, so the same
//     job can finish in time on a quieter machine.
//   - KindPanic: yes — panics can stem from transient process state; a
//     deterministic panic simply fails again and exhausts its budget.
//   - KindSim: no — engine errors are validation or protocol-contract
//     failures, deterministic in the Config.
//   - KindSlotLimit: no — simulated time is deterministic; the job would
//     hit the same limit again.
//   - KindCanceled, KindShutdown: no — the batch is being torn down.
func (k Kind) Retryable() bool {
	return k == KindTimeout || k == KindPanic
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSim:
		return "sim error"
	case KindPanic:
		return "panic"
	case KindTimeout:
		return "timeout"
	case KindSlotLimit:
		return "slot limit"
	case KindCanceled:
		return "canceled"
	case KindShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Sentinel errors matched by errors.Is against a *JobError, one per
// abnormal Kind.
var (
	// ErrPanic matches KindPanic: the job's goroutine panicked.
	ErrPanic = errors.New("runner: job panicked")
	// ErrTimeout matches KindTimeout: the job overran its per-run
	// wall-clock budget.
	ErrTimeout = errors.New("runner: job exceeded wall-clock timeout")
	// ErrSlotLimit matches KindSlotLimit: the simulation hit MaxSlots
	// before completing.
	ErrSlotLimit = errors.New("runner: job exceeded slot limit")
	// ErrCanceled matches KindCanceled: the batch context was canceled
	// for a reason other than a drain.
	ErrCanceled = errors.New("runner: batch canceled")
	// ErrShutdown doubles as the cancellation *cause* callers pass to
	// signal a drain: cancel the batch context via context.WithCancelCause
	// (or Batch.Cancel) with ErrShutdown — or an error wrapping it — and
	// every interrupted job fails with KindShutdown instead of
	// KindCanceled, so "the server is restarting" is distinguishable from
	// "the user abandoned this job" without string matching.
	ErrShutdown = errors.New("runner: batch shut down")
)

// JobError reports one failed job. It wraps both the sentinel for its Kind
// and the underlying cause, so errors.Is works against either (e.g.
// errors.Is(err, runner.ErrTimeout), errors.Is(err, context.Canceled)).
//
// Unwrap contract: the cause chain carries exactly the failure's own
// classification. A runner-imposed abort (timeout, slot limit,
// cancellation) does NOT unwrap to sim.ErrInterrupted — that sentinel is
// reserved for caller-supplied sim.Config.Interrupt hooks, whose firing is
// an ordinary engine outcome of kind KindSim. Use Kind (or the per-kind
// sentinels) to classify, and Kind.Retryable to decide whether a retry can
// help.
type JobError struct {
	// Index is the job's position in the input slice.
	Index int
	// Kind classifies the failure.
	Kind Kind
	// Err is the underlying cause: the engine error, the recovered panic
	// value, or the context error.
	Err error
	// Stack is the goroutine stack captured at recovery; KindPanic only.
	Stack []byte
}

// Error implements error.
func (e *JobError) Error() string {
	return fmt.Sprintf("runner: job %d: %s: %v", e.Index, e.Kind, e.Err)
}

// Unwrap exposes the Kind sentinel and the underlying cause.
func (e *JobError) Unwrap() []error {
	var out []error
	switch e.Kind {
	case KindPanic:
		out = append(out, ErrPanic)
	case KindTimeout:
		out = append(out, ErrTimeout)
	case KindSlotLimit:
		out = append(out, ErrSlotLimit)
	case KindCanceled:
		out = append(out, ErrCanceled)
	case KindShutdown:
		// A shutdown is still a cancellation: errors.Is(err, ErrCanceled)
		// keeps working for callers that don't care why the batch stopped.
		out = append(out, ErrShutdown, ErrCanceled)
	}
	if e.Err != nil {
		out = append(out, e.Err)
	}
	return out
}

package runner_test

// Tests for the runner's hardening features: per-job retry with
// exponential backoff for retryable failure kinds, and journal-backed
// checkpoint/resume.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"ldcflood/internal/runner"
	"ldcflood/internal/sim"
)

func TestKindRetryable(t *testing.T) {
	want := map[runner.Kind]bool{
		runner.KindSim:       false,
		runner.KindPanic:     true,
		runner.KindTimeout:   true,
		runner.KindSlotLimit: false,
		runner.KindCanceled:  false,
	}
	for k, w := range want {
		if got := k.Retryable(); got != w {
			t.Errorf("%v.Retryable() = %v, want %v", k, got, w)
		}
	}
}

// flaky panics for its first `failures` Intents calls — counted across
// retry attempts via the shared counter — then goes silent like mute, so
// a recovered attempt runs cleanly to its slot horizon.
type flaky struct {
	mute
	failures *atomic.Int64
}

func (f flaky) Intents(*sim.World) []sim.Intent {
	if f.failures.Add(-1) >= 0 {
		panic("flaky: transient fault")
	}
	return nil
}

// flakyJob fails its first `failures` attempts with a panic, then runs to
// its 64-slot horizon cleanly.
func flakyJob(failures int64) sim.Config {
	var n atomic.Int64
	n.Store(failures)
	cfg := quickJob(1)
	cfg.Protocol = flaky{failures: &n}
	cfg.Coverage = 1
	cfg.MaxSlots = 64
	return cfg
}

func TestRetryRecoversTransientPanic(t *testing.T) {
	jobs := []sim.Config{flakyJob(2), quickJob(7)}
	rs, stats := runner.Run(context.Background(), jobs, runner.Options{
		Workers: 2,
		Retries: 2, // two retries = three attempts, enough for two failures
	})
	if rs[0].Err != nil {
		t.Fatalf("flaky job not recovered after retries: %v", rs[0].Err)
	}
	if rs[0].Res == nil || rs[0].Res.Completed {
		t.Fatalf("flaky job result %+v, want an uncovered 64-slot run", rs[0].Res)
	}
	if stats.Failed != 0 {
		t.Fatalf("stats.Failed = %d, want 0", stats.Failed)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	rs, _ := runner.Run(context.Background(), []sim.Config{flakyJob(5)}, runner.Options{
		Retries: 2, // three attempts < five failures
	})
	if !errors.Is(rs[0].Err, runner.ErrPanic) {
		t.Fatalf("error = %v, want the final panic", rs[0].Err)
	}
}

func TestNoRetryForNonRetryableKind(t *testing.T) {
	attempts := 0
	cfg := stuckJob(3)
	prev := cfg.Interrupt
	cfg.Interrupt = func(slot int64) bool {
		if slot == 0 {
			attempts++
		}
		if prev != nil {
			return prev(slot)
		}
		return false
	}
	rs, _ := runner.Run(context.Background(), []sim.Config{cfg}, runner.Options{
		SlotLimit: 100,
		Retries:   3,
	})
	if !errors.Is(rs[0].Err, runner.ErrSlotLimit) {
		t.Fatalf("error = %v, want ErrSlotLimit", rs[0].Err)
	}
	if attempts != 1 {
		t.Fatalf("deterministic slot-limit failure ran %d times, want 1", attempts)
	}
}

func TestRetryBackoffHonorsCancellation(t *testing.T) {
	// The first attempt panics, then the hour-long backoff must end at the
	// context deadline instead of blocking the batch.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	rs, _ := runner.Run(ctx, []sim.Config{flakyJob(100)}, runner.Options{
		Retries:      3,
		RetryBackoff: time.Hour,
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled backoff still waited %v", elapsed)
	}
	if !errors.Is(rs[0].Err, runner.ErrPanic) {
		t.Fatalf("error = %v, want the first attempt's panic", rs[0].Err)
	}
}

func TestJournalResumeProducesIdenticalResults(t *testing.T) {
	const key = "journal-test-batch-v1"
	path := filepath.Join(t.TempDir(), "sweep.journal")
	jobs := make([]sim.Config, 6)
	for i := range jobs {
		jobs[i] = quickJob(uint64(200 + i))
	}

	// Uninterrupted reference batch, no journal.
	want, _ := runner.Run(context.Background(), jobs, runner.Options{Workers: 2})

	// First attempt: sequential, canceled after two jobs — the shape of a
	// killed sweep. Completed jobs land in the journal.
	ctx, cancel := context.WithCancel(context.Background())
	nDone := 0
	j1, err := runner.OpenJournal(path, key, false)
	if err != nil {
		t.Fatal(err)
	}
	runner.Run(ctx, jobs, runner.Options{
		Workers: 1,
		Journal: j1,
		Progress: func(p runner.Progress) {
			if nDone++; nDone == 2 {
				cancel()
			}
		},
	})
	if err := j1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()

	// Resume: journaled jobs are served without simulation, the rest run.
	j2, err := runner.OpenJournal(path, key, true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Completed() != 2 {
		t.Fatalf("resumed journal holds %d jobs, want 2", j2.Completed())
	}
	got, stats := runner.Run(context.Background(), jobs, runner.Options{
		Workers: 3,
		Journal: j2,
	})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		t.Fatalf("resumed batch failed %d jobs", stats.Failed)
	}
	if !reflect.DeepEqual(resultsOf(want), resultsOf(got)) {
		t.Fatal("resumed batch results differ from the uninterrupted run")
	}

	// A third run against the now-complete journal simulates nothing and
	// still matches.
	j3, err := runner.OpenJournal(path, key, true)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Completed() != len(jobs) {
		t.Fatalf("journal holds %d jobs, want %d", j3.Completed(), len(jobs))
	}
	again, _ := runner.Run(context.Background(), jobs, runner.Options{Journal: j3})
	j3.Close()
	if !reflect.DeepEqual(resultsOf(want), resultsOf(again)) {
		t.Fatal("fully journaled batch results differ from the uninterrupted run")
	}
}

// resultsOf projects a batch onto its sim results (dropping wall-clock
// dependent stats) for equality comparison.
func resultsOf(rs runner.Results) []*sim.Result {
	out := make([]*sim.Result, len(rs))
	for i := range rs {
		out[i] = rs[i].Res
	}
	return out
}

func TestJournalKeyMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := runner.OpenJournal(path, "batch-a", false)
	if err != nil {
		t.Fatal(err)
	}
	runner.Run(context.Background(), []sim.Config{quickJob(1)}, runner.Options{Journal: j})
	j.Close()
	if _, err := runner.OpenJournal(path, "batch-b", true); err == nil {
		t.Fatal("resuming with a different batch key succeeded")
	}
}

func TestJournalResumeTornTrailingLine(t *testing.T) {
	const key = "torn"
	path := filepath.Join(t.TempDir(), "sweep.journal")
	jobs := []sim.Config{quickJob(11), quickJob(12)}
	j, err := runner.OpenJournal(path, key, false)
	if err != nil {
		t.Fatal(err)
	}
	runner.Run(context.Background(), jobs, runner.Options{Workers: 1, Journal: j})
	j.Close()

	// Tear the final record mid-line, as a kill -9 during a write would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := runner.OpenJournal(path, key, true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Completed() != 1 {
		t.Fatalf("torn journal holds %d jobs, want 1 (torn record dropped)", j2.Completed())
	}
	rs, stats := runner.Run(context.Background(), jobs, runner.Options{Journal: j2})
	if stats.Failed != 0 || rs[1].Res == nil {
		t.Fatalf("re-run of torn job failed: %v", rs.Err())
	}
	if err := j2.Err(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// A second resume must see every record: the torn fragment has to be
	// truncated before appending, not fused with the re-run's record.
	j3, err := runner.OpenJournal(path, key, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Completed() != len(jobs) {
		t.Fatalf("second resume holds %d jobs, want %d (record fused with torn fragment)",
			j3.Completed(), len(jobs))
	}
}

// TestJournalResumeTornHeader is the first-write crash: the run was
// killed mid-way through writing the header line itself, leaving a
// recognizable fragment and not a single complete line. Resume must
// treat the file as empty and rewrite a fresh header — not fail
// unrecoverably — while a fragment that is NOT ours still fails loudly.
func TestJournalResumeTornHeader(t *testing.T) {
	const key = "torn-header"
	full := []byte(`{"journal":"ldcflood-runner","v":1,"key":"torn-header"}`)
	for cut := 1; cut <= len(full); cut += 7 {
		path := filepath.Join(t.TempDir(), "sweep.journal")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := runner.OpenJournal(path, key, true)
		if err != nil {
			t.Fatalf("resume with header torn at byte %d: %v", cut, err)
		}
		if j.Completed() != 0 {
			t.Fatalf("torn-header journal holds %d jobs", j.Completed())
		}
		rs, _ := runner.Run(context.Background(), []sim.Config{quickJob(3)}, runner.Options{Journal: j})
		if rs[0].Err != nil {
			t.Fatal(rs[0].Err)
		}
		j.Close()
		// The rewritten file must resume cleanly.
		j2, err := runner.OpenJournal(path, key, true)
		if err != nil {
			t.Fatalf("second resume after torn-header rewrite: %v", err)
		}
		if j2.Completed() != 1 {
			t.Fatalf("rewritten journal holds %d jobs, want 1", j2.Completed())
		}
		j2.Close()
	}

	// A non-journal fragment keeps the clobber guard: resume must refuse.
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte(`{"journal":"something-else`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.OpenJournal(path, key, true); err == nil {
		t.Fatal("resuming a non-journal fragment succeeded; would clobber the file")
	}
}

// TestReadJournalKey pins the header-only reader used by cmd/sweep's
// legacy-journal diagnostics.
func TestReadJournalKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := runner.OpenJournal(path, "the-key", false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	key, err := runner.ReadJournalKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if key != "the-key" {
		t.Fatalf("ReadJournalKey = %q, want %q", key, "the-key")
	}
	if _, err := runner.ReadJournalKey(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("ReadJournalKey on a missing file succeeded")
	}
	bogus := filepath.Join(t.TempDir(), "bogus")
	if err := os.WriteFile(bogus, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ReadJournalKey(bogus); err == nil {
		t.Fatal("ReadJournalKey on a non-journal file succeeded")
	}
}

// TestJournalRecordIdempotent pins the out-of-band write path the
// distributed lease protocol journals worker completions through: the
// first Record for an index lands, a duplicate is refused, and the
// journaled set round-trips a resume.
func TestJournalRecordIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := runner.OpenJournal(path, "record", false)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := runner.Run(context.Background(), []sim.Config{quickJob(21)}, runner.Options{})
	if rs[0].Err != nil {
		t.Fatal(rs[0].Err)
	}
	if !j.Record(0, rs[0].Res) {
		t.Fatal("first Record refused")
	}
	if j.Record(0, rs[0].Res) {
		t.Fatal("duplicate Record accepted; the cell would be journaled twice")
	}
	if got, ok := j.Done(0); !ok || got != rs[0].Res {
		t.Fatal("Record did not land in the done set")
	}
	j.Close()
	j2, err := runner.OpenJournal(path, "record", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Completed() != 1 {
		t.Fatalf("resumed journal holds %d records, want 1", j2.Completed())
	}
}

func TestJournalResumeMissingFileStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.journal")
	j, err := runner.OpenJournal(path, "fresh", true)
	if err != nil {
		t.Fatalf("resume of a missing journal: %v", err)
	}
	defer j.Close()
	if j.Completed() != 0 {
		t.Fatalf("fresh journal holds %d jobs", j.Completed())
	}
	rs, _ := runner.Run(context.Background(), []sim.Config{quickJob(5)}, runner.Options{Journal: j})
	if rs[0].Err != nil {
		t.Fatal(rs[0].Err)
	}
}

package matrixflood

import (
	"testing"
	"testing/quick"

	"ldcflood/internal/analysis"
	"ldcflood/internal/rngutil"
)

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	for i, cfg := range []Config{
		{N: 0, M: 1},
		{N: 1, M: 0},
		{N: 4, M: 1, Policy: Policy(9)},
	} {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestSinglePacketAchievesFWL(t *testing.T) {
	// For N = 2^n the single packet must complete in exactly
	// m = ⌈log2(1+N)⌉ compact slots (Lemma 2 / Eq. 6).
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		res := mustRun(t, Config{N: n, M: 1})
		m := analysis.FWLFloor(n)
		if res.CompletionSlot[0] != m {
			t.Fatalf("N=%d: completion %d, want m=%d", n, res.CompletionSlot[0], m)
		}
		if res.Waitings[0] != m {
			t.Fatalf("N=%d: waitings %d, want %d", n, res.Waitings[0], m)
		}
	}
}

func TestFig3Example(t *testing.T) {
	// The paper's worked example: N=4, M=2.
	res := mustRun(t, Config{N: 4, M: 2})
	if !res.Completed {
		t.Fatal("not completed")
	}
	// Packet 0 completes at exactly m = 3 (Fig. 3: all nodes at c=3).
	if res.CompletionSlot[0] != 3 {
		t.Fatalf("packet 0 completion = %d, want 3", res.CompletionSlot[0])
	}
	// Packet 1 completes within the Table I bound K1 + W1 = 1 + (m+1) = 5.
	if res.CompletionSlot[1] > 5 {
		t.Fatalf("packet 1 completion = %d, exceeds Table I bound 5", res.CompletionSlot[1])
	}
	if res.CompletionSlot[1] <= res.CompletionSlot[0] {
		t.Fatal("packet 1 cannot finish before packet 0 under FCFS injection")
	}
}

func TestTableIBounds(t *testing.T) {
	// Every packet's waitings respect the Table I values:
	// Wp <= m + min(p, m-1), and the last completion is within
	// K_{M-1} + W_{M-1}.
	cases := []struct{ n, m int }{
		{4, 2}, {8, 3}, {8, 6}, {16, 4}, {16, 12}, {32, 5}, {32, 20},
		{64, 10}, {64, 40}, {128, 30}, {256, 12}, {256, 50},
	}
	for _, c := range cases {
		res := mustRun(t, Config{N: c.n, M: c.m})
		bounds := analysis.Waitings(c.n, c.m)
		for p, w := range res.Waitings {
			if w > bounds[p] {
				t.Fatalf("N=%d M=%d: W_%d = %d exceeds Table I bound %d", c.n, c.m, p, w, bounds[p])
			}
			if w < analysis.FWLFloor(c.n) {
				t.Fatalf("N=%d M=%d: W_%d = %d beats the Eq. 6 floor %d — impossible", c.n, c.m, p, w, analysis.FWLFloor(c.n))
			}
		}
		if got, bound := res.TotalSlots, analysis.FWLMulti(c.n, c.m); got > bound {
			t.Fatalf("N=%d M=%d: total %d exceeds FWL bound %d", c.n, c.m, got, bound)
		}
	}
}

func TestPipelining(t *testing.T) {
	// Corollary 1: beyond the knee, each extra packet adds O(1) compact
	// slots, not O(m): flooding pipelines.
	n := 64
	short := mustRun(t, Config{N: n, M: 5})
	long := mustRun(t, Config{N: n, M: 25})
	extraPerPacket := float64(long.TotalSlots-short.TotalSlots) / 20
	if extraPerPacket > 2.5 {
		t.Fatalf("marginal cost %v slots/packet — flooding is not pipelining", extraPerPacket)
	}
}

func TestExpiryAblation(t *testing.T) {
	// With the expiry rule disabled, stale packets crowd out new ones and
	// completion takes longer (or fails). The run must never be faster.
	n, m := 32, 10
	base := mustRun(t, Config{N: n, M: m})
	abl, err := Run(Config{N: n, M: m, DisableExpiry: true, MaxSlots: 100000})
	if err != nil {
		// Livelock is an acceptable (and informative) ablation outcome.
		t.Logf("ablation livelocked as expected: %v", err)
		return
	}
	if abl.TotalSlots < base.TotalSlots {
		t.Fatalf("disabling expiry sped up flooding: %d < %d", abl.TotalSlots, base.TotalSlots)
	}
}

func TestFIFOPolicy(t *testing.T) {
	// FIFO must still complete and respect the theory floor; the paper's
	// most-recent-first choice should not be slower.
	n, m := 64, 16
	mrf := mustRun(t, Config{N: n, M: m})
	fifo, err := Run(Config{N: n, M: m, Policy: FIFOPacket, MaxSlots: 100000})
	if err != nil {
		t.Logf("FIFO failed to complete: %v", err)
		return
	}
	if mrf.TotalSlots > fifo.TotalSlots {
		t.Fatalf("most-recent-first (%d slots) slower than FIFO (%d slots)", mrf.TotalSlots, fifo.TotalSlots)
	}
}

func TestType2SlotAccounting(t *testing.T) {
	res := mustRun(t, Config{N: 16, M: 8})
	if res.Type2Slots < 0 || res.Type2Slots > res.TotalSlots {
		t.Fatalf("type-2 slots %d outside [0,%d]", res.Type2Slots, res.TotalSlots)
	}
	if res.HalfDuplexSlots != res.TotalSlots+res.Type2Slots {
		t.Fatalf("half-duplex accounting wrong: %d != %d + %d", res.HalfDuplexSlots, res.TotalSlots, res.Type2Slots)
	}
	// Multi-packet floods on nontrivial networks necessarily overlap
	// transmissions, so some type-2 slots must appear.
	if res.Type2Slots == 0 {
		t.Fatal("no type-2 slots in a multi-packet flood — detector broken")
	}
}

func TestSinglePacketNoType2(t *testing.T) {
	// N=1, M=1: the source makes one transmission to node 1 and stops —
	// no node ever transmits and receives in the same slot.
	res := mustRun(t, Config{N: 1, M: 1})
	if res.Type2Slots != 0 {
		t.Fatalf("N=1 M=1 has %d type-2 slots, want 0", res.Type2Slots)
	}
	if res.TotalSlots != 1 {
		t.Fatalf("N=1 M=1 took %d slots, want 1", res.TotalSlots)
	}
}

func TestRunRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 100, 298} {
		if _, err := Run(Config{N: n, M: 1}); err == nil {
			t.Fatalf("Run accepted non-power-of-two N=%d", n)
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPowerOfTwo(n) {
			t.Fatalf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 100} {
		if IsPowerOfTwo(n) {
			t.Fatalf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestTransmissionCounts(t *testing.T) {
	res := mustRun(t, Config{N: 16, M: 4})
	// Every one of the 4 packets must reach 16 sensors; each non-duplicate
	// reception is one transmission, so at least 4×16 successful deliveries
	// happened (source-injections are not transmissions).
	minTx := 4 * 16
	if res.Transmissions < minTx {
		t.Fatalf("transmissions %d < minimum deliveries %d", res.Transmissions, minTx)
	}
	if res.DuplicateReceptions > res.Transmissions {
		t.Fatal("more duplicates than transmissions")
	}
}

func TestGeneralSchedulerArbitraryN(t *testing.T) {
	// Theorem 2 regime: arbitrary N completes within ~2x the theorem's
	// compact-slot envelope 2(2m + M) — the measured performance of the
	// heuristic (the paper gives no constructive algorithm here).
	for _, n := range []int{3, 5, 7, 12, 100, 298, 1000} {
		for _, m := range []int{1, 6, 20} {
			res, err := RunGeneral(Config{N: n, M: m})
			if err != nil {
				t.Fatalf("N=%d M=%d: %v", n, m, err)
			}
			budget := 2*(2*analysis.FWLFloor(n)+m) + 4
			if res.TotalSlots > budget {
				t.Fatalf("N=%d M=%d: %d slots exceeds 2x Theorem 2 envelope %d", n, m, res.TotalSlots, budget)
			}
		}
	}
}

func TestGeneralSchedulerSinglePacketOptimal(t *testing.T) {
	// The greedy matcher doubles coverage each slot, so one packet takes
	// exactly m = ⌈log2(1+N)⌉ compact slots for any N.
	for _, n := range []int{2, 3, 7, 8, 100, 298, 1024} {
		res, err := RunGeneral(Config{N: n, M: 1})
		if err != nil {
			t.Fatal(err)
		}
		if want := analysis.FWLFloor(n); res.CompletionSlot[0] != want {
			t.Fatalf("N=%d: completion %d, want m=%d", n, res.CompletionSlot[0], want)
		}
	}
}

func TestGeneralVsAlgorithm1OnPowersOfTwo(t *testing.T) {
	// On N = 2^n Algorithm 1 achieves the exact limit; the general matcher
	// must complete and stay within 2x of Algorithm 1's total.
	for _, n := range []int{8, 32, 128} {
		m := 10
		alg1 := mustRun(t, Config{N: n, M: m})
		gen, err := RunGeneral(Config{N: n, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if gen.TotalSlots > 2*alg1.TotalSlots+2 {
			t.Fatalf("N=%d: general %d slots vs Algorithm 1 %d — heuristic regressed", n, gen.TotalSlots, alg1.TotalSlots)
		}
	}
}

func TestGeneralFIFOSerializes(t *testing.T) {
	// The ablation insight: per-node FIFO packet choice destroys
	// pipelining — each packet costs ~m slots — while most-recent-first
	// pipelines. This is the paper's motivation for the recency rule.
	n, m := 100, 6
	mrf, err := RunGeneral(Config{N: n, M: m})
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := RunGeneral(Config{N: n, M: m, Policy: FIFOPacket, MaxSlots: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if fifo.TotalSlots <= mrf.TotalSlots {
		t.Fatalf("FIFO (%d) should be slower than most-recent-first (%d)", fifo.TotalSlots, mrf.TotalSlots)
	}
}

func TestGeneralSchedulerValidation(t *testing.T) {
	for i, cfg := range []Config{
		{N: 0, M: 1},
		{N: 4, M: 0},
		{N: 4, M: 1, Policy: Policy(3)},
	} {
		if _, err := RunGeneral(cfg); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestGeneralSchedulerFIFO(t *testing.T) {
	res, err := RunGeneral(Config{N: 50, M: 8, Policy: FIFOPacket, MaxSlots: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("FIFO general run incomplete")
	}
}

func TestRunTraceMatchesRun(t *testing.T) {
	cfg := Config{N: 4, M: 2}
	tr, err := RunTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Slots) != tr.Result.TotalSlots+1 {
		t.Fatalf("trace has %d snapshots for %d slots", len(tr.Slots), tr.Result.TotalSlots)
	}
	// Snapshot 0: only the source has packet 0.
	if !tr.Slots[0][0][0] {
		t.Fatal("source lacks packet 0 at c=0")
	}
	for node := 1; node <= 4; node++ {
		if tr.Slots[0][0][node] {
			t.Fatalf("node %d has packet 0 at c=0", node)
		}
	}
	// Final snapshot: everyone has everything.
	last := tr.Slots[len(tr.Slots)-1]
	for p := range last {
		for node, has := range last[p] {
			if !has {
				t.Fatalf("final snapshot: node %d missing packet %d", node, p)
			}
		}
	}
	// Possession is monotone over time.
	for c := 1; c < len(tr.Slots); c++ {
		for p := range tr.Slots[c] {
			for node := range tr.Slots[c][p] {
				if tr.Slots[c-1][p][node] && !tr.Slots[c][p][node] {
					t.Fatalf("possession lost: c=%d p=%d node=%d", c, p, node)
				}
			}
		}
	}
}

func TestRunTraceFig3Checkpoints(t *testing.T) {
	// Verify the c=1 state of the paper's Fig. 3(b): packet 0 at {0,1},
	// packet 1 at {0}.
	tr, err := RunTrace(Config{N: 4, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	c1p0 := tr.Slots[1][0]
	want0 := []bool{true, true, false, false, false}
	for i := range want0 {
		if c1p0[i] != want0[i] {
			t.Fatalf("c=1 packet 0 possession[%d] = %v, want %v", i, c1p0[i], want0[i])
		}
	}
	c1p1 := tr.Slots[1][1]
	want1 := []bool{true, false, false, false, false}
	for i := range want1 {
		if c1p1[i] != want1[i] {
			t.Fatalf("c=1 packet 1 possession[%d] = %v, want %v", i, c1p1[i], want1[i])
		}
	}
}

func TestExpectedOriginalDelay(t *testing.T) {
	if got := ExpectedOriginalDelay(10, 20); got != 100 {
		t.Fatalf("ExpectedOriginalDelay = %v, want 100", got)
	}
	if got := ExpectedOriginalDelay(0, 5); got != 0 {
		t.Fatalf("zero waitings delay = %v", got)
	}
	for i, f := range []func(){
		func() { ExpectedOriginalDelay(1, 0) },
		func() { ExpectedOriginalDelay(-1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPolicyString(t *testing.T) {
	if MostRecentFirst.String() != "most-recent-first" || FIFOPacket.String() != "fifo" {
		t.Fatal("policy names wrong")
	}
	if Policy(7).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

// Property: for random power-of-two N and M, runs complete, waitings honor
// Table I, and completion order follows injection order.
func TestQuickAlgorithmInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		n := 1 << (1 + r.Intn(7)) // 2..128
		m := 1 + r.Intn(20)
		res, err := Run(Config{N: n, M: m})
		if err != nil || !res.Completed {
			return false
		}
		bounds := analysis.Waitings(n, m)
		floor := analysis.FWLFloor(n)
		prev := 0
		for p := 0; p < m; p++ {
			if res.Waitings[p] > bounds[p] || res.Waitings[p] < floor {
				return false
			}
			if res.CompletionSlot[p] < prev {
				return false
			}
			prev = res.CompletionSlot[p]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlgorithm1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{N: 256, M: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

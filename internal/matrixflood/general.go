package matrixflood

import (
	"fmt"
	"sort"

	"ldcflood/internal/analysis"
)

// RunGeneral executes a constructive compact-time flooding schedule for
// arbitrary N — the regime of Theorem 2, for which the paper proves lower
// and upper bounds but gives no algorithm (Assumption II restricts
// Algorithm 1 to N = 2^n).
//
// The scheduler is a centralized matcher honoring the same per-slot
// capacity as the matrix model: every node transmits at most one packet and
// receives at most one packet per compact slot. Each node ranks the
// incomplete packets it holds by the paper's per-node rule — most recently
// received first (or oldest-first under FIFOPacket, the ablation that
// demonstrates why recency matters: FIFO serializes packets at ~m compact
// slots each). Nodes are then matched rank-by-rank to receivers still
// missing the chosen packet, so surplus senders of a saturated packet fall
// back to older traffic instead of idling.
//
// Measured behaviour (see package tests): a single packet completes in
// exactly m = ⌈log2(1+N)⌉ slots for any N, and multi-packet runs finish
// within about twice the Theorem 2 compact-slot envelope — honest for a
// heuristic standing in for a schedule the paper itself only bounds.
func RunGeneral(cfg Config) (Result, error) {
	if cfg.N < 1 {
		return Result{}, fmt.Errorf("matrixflood: N = %d must be >= 1", cfg.N)
	}
	if cfg.M < 1 {
		return Result{}, fmt.Errorf("matrixflood: M = %d must be >= 1", cfg.M)
	}
	if cfg.Policy != MostRecentFirst && cfg.Policy != FIFOPacket {
		return Result{}, fmt.Errorf("matrixflood: unknown policy %d", int(cfg.Policy))
	}
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		// FIFO serializes at up to ~m slots per packet; size for it.
		maxSlots = 4 * (cfg.M + 4) * (analysis.FWLFloor(cfg.N) + 2)
	}

	st := newState(cfg)
	res := Result{
		CompletionSlot: make([]int, cfg.M),
		Waitings:       make([]int, cfg.M),
	}
	for p := range res.CompletionSlot {
		res.CompletionSlot[p] = -1
		res.Waitings[p] = -1
	}

	done := 0
	txBusy := make([]bool, st.total)
	rxBusy := make([]bool, st.total)
	prefs := make([][]int, st.total)
	missPool := make([][]int, cfg.M)
	missIdx := make([]int, cfg.M)
	for c := 0; c < maxSlots && done < cfg.M; c++ {
		if c < cfg.M {
			st.deliver(c, 0, c)
		}
		for i := range txBusy {
			txBusy[i] = false
			rxBusy[i] = false
		}
		// Per-node preference lists over usable incomplete packets. A packet
		// received this slot is usable only next slot, except the source's
		// fresh injection (Algorithm 1 lets the source forward immediately).
		for i := 0; i < st.total; i++ {
			prefs[i] = prefs[i][:0]
			for p := 0; p < cfg.M; p++ {
				if st.has[p][i] && st.remain[p] > 0 && (st.recvSlot[p][i] < c || (i == 0 && p == c)) {
					prefs[i] = append(prefs[i], p)
				}
			}
			pl := prefs[i]
			if cfg.Policy == MostRecentFirst {
				sort.Slice(pl, func(a, b int) bool {
					ra, rb := st.recvSlot[pl[a]][i], st.recvSlot[pl[b]][i]
					if ra != rb {
						return ra > rb
					}
					return pl[a] > pl[b]
				})
			} // FIFOPacket: already in ascending packet order.
		}
		// Receiver pools per incomplete packet.
		highest := c
		if highest > cfg.M-1 {
			highest = cfg.M - 1
		}
		for p := 0; p <= highest; p++ {
			missPool[p] = missPool[p][:0]
			missIdx[p] = 0
			if st.remain[p] == 0 {
				continue
			}
			for i := 0; i < st.total; i++ {
				if !st.has[p][i] {
					missPool[p] = append(missPool[p], i)
				}
			}
		}
		// Rank-by-rank matching with fallback.
		type tx struct{ from, to, p int }
		var txs []tx
		maxRank := 0
		for i := range prefs {
			if len(prefs[i]) > maxRank {
				maxRank = len(prefs[i])
			}
		}
		type2 := false
		for rank := 0; rank < maxRank; rank++ {
			for i := 0; i < st.total; i++ {
				if txBusy[i] || rank >= len(prefs[i]) {
					continue
				}
				p := prefs[i][rank]
				pool := missPool[p]
				for missIdx[p] < len(pool) && rxBusy[pool[missIdx[p]]] {
					missIdx[p]++
				}
				if missIdx[p] >= len(pool) {
					continue // packet saturated; node falls to next rank
				}
				to := pool[missIdx[p]]
				txBusy[i] = true
				rxBusy[to] = true
				if rxBusy[i] || txBusy[to] {
					type2 = true
				}
				txs = append(txs, tx{i, to, p})
			}
		}
		if type2 {
			res.Type2Slots++
		}
		for _, t := range txs {
			res.Transmissions++
			st.deliver(t.p, t.to, c)
		}
		for p := 0; p < cfg.M; p++ {
			if res.CompletionSlot[p] == -1 && p <= c && st.remain[p] == 0 {
				res.CompletionSlot[p] = c + 1
				res.Waitings[p] = c + 1 - p
				done++
				if c+1 > res.TotalSlots {
					res.TotalSlots = c + 1
				}
			}
		}
	}
	res.Completed = done == cfg.M
	res.HalfDuplexSlots = res.TotalSlots + res.Type2Slots
	if !res.Completed {
		return res, fmt.Errorf("matrixflood: general scheduler left %d/%d packets incomplete after %d slots", cfg.M-done, cfg.M, maxSlots)
	}
	return res, nil
}

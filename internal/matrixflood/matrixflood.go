// Package matrixflood implements the paper's Algorithm 1: the matrix-based
// multi-packet flooding algorithm that achieves the Flooding Waiting Limit
// on the compact time scale, together with the half-duplex "type-2 slot"
// modification of Section IV-A2 and the ablation variants called out in
// DESIGN.md (expiry rule on/off, most-recent-first vs FIFO packet choice).
//
// The model is exactly the paper's: 1+N nodes (node 0 is the source, which
// injects packet p = c at the beginning of compact slot c while p < M), and
// in slot c every node i in 0..N-1 holding a transmittable packet f(i, c)
// sends it to node (2^(c mod n) + i) mod N, with a result of 0 mapped to
// node N. Dissemination state is the X/S matrix evolution of Eq. (2).
package matrixflood

import (
	"fmt"

	"ldcflood/internal/analysis"
)

// Policy selects which transmittable packet a node forwards.
type Policy int

const (
	// MostRecentFirst transmits the most recently received non-expired
	// packet — the strategy Algorithm 1 specifies ("we propose to transmit
	// the most recently received non-expired packet first").
	MostRecentFirst Policy = iota
	// FIFOPacket transmits the oldest non-expired packet instead; used by
	// the packet-choice ablation.
	FIFOPacket
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case MostRecentFirst:
		return "most-recent-first"
	case FIFOPacket:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes a run of Algorithm 1.
type Config struct {
	// N is the number of nominal sensors (nodes 1..N); the source is node 0.
	N int
	// M is the number of packets the source injects (packet p at slot p).
	M int
	// Policy selects the packet-choice rule (default MostRecentFirst).
	Policy Policy
	// DisableExpiry turns off the expired-time rule (ablation): nodes then
	// keep forwarding old packets forever, crowding out new ones.
	DisableExpiry bool
	// MaxSlots bounds the run; 0 means an adequate default derived from
	// the Table I bound (with generous slack for ablation runs).
	MaxSlots int
}

// Result captures the outcome of a run.
type Result struct {
	// CompletionSlot[p] is the compact slot at whose beginning packet p is
	// possessed by all 1+N nodes, or -1 if it never completed.
	CompletionSlot []int
	// Waitings[p] = CompletionSlot[p] - p: the compact-time waitings packet
	// p experienced (its Kp + Wp share minus its injection slot Kp = p).
	Waitings []int
	// TotalSlots is the compact slot at which the last packet completed.
	TotalSlots int
	// Type2Slots counts slots in which at least one node both transmitted
	// and received — the slots that must be split in half-duplex networks
	// (Section IV-A2), each costing twice the duration.
	Type2Slots int
	// HalfDuplexSlots = TotalSlots + Type2Slots: the compact duration after
	// the half-duplex modification doubles every type-2 slot.
	HalfDuplexSlots int
	// Transmissions is the total number of transmissions performed.
	Transmissions int
	// DuplicateReceptions counts receptions of packets already held.
	DuplicateReceptions int
	// Completed reports whether every packet reached every node.
	Completed bool
}

// state is the per-run dissemination state.
type state struct {
	cfg      Config
	n        int      // sensors
	total    int      // 1 + N
	hopBits  int      // n in the target rule: log2 window of the doubling offsets
	has      [][]bool // has[p][node]
	recvSlot [][]int  // recvSlot[p][node]: compact slot of first reception, -1 if none
	remain   []int    // remain[p]: nodes still missing packet p
}

// IsPowerOfTwo reports whether n is a positive power of two — the paper's
// Assumption II, required by Algorithm 1's doubling target rule.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Run executes Algorithm 1 and returns its Result. N must be a power of two
// (Assumption II); for arbitrary N use RunGeneral, the constructive
// scheduler for the Theorem 2 regime. Run returns an error for invalid
// configuration or if the run exceeds MaxSlots without completing (which
// indicates either an ablation-induced livelock or too small a cap).
func Run(cfg Config) (Result, error) {
	if cfg.N < 1 {
		return Result{}, fmt.Errorf("matrixflood: N = %d must be >= 1", cfg.N)
	}
	if !IsPowerOfTwo(cfg.N) {
		return Result{}, fmt.Errorf("matrixflood: Algorithm 1 requires N = 2^n (got %d); use RunGeneral", cfg.N)
	}
	if cfg.M < 1 {
		return Result{}, fmt.Errorf("matrixflood: M = %d must be >= 1", cfg.M)
	}
	if cfg.Policy != MostRecentFirst && cfg.Policy != FIFOPacket {
		return Result{}, fmt.Errorf("matrixflood: unknown policy %d", int(cfg.Policy))
	}
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		// Table I bound: the last packet completes by 2M + 2m compact
		// slots; leave slack for the FIFO policy ablation.
		maxSlots = 8 * (cfg.M + analysis.FWLFloor(cfg.N) + 4)
	}

	st := newState(cfg)
	res := Result{
		CompletionSlot: make([]int, cfg.M),
		Waitings:       make([]int, cfg.M),
	}
	for p := range res.CompletionSlot {
		res.CompletionSlot[p] = -1
		res.Waitings[p] = -1
	}

	done := 0
	type tx struct {
		from, to, packet int
	}
	// txs and transmitted are reused across slots: the per-slot map/slice
	// churn showed up in the schedule-length sweeps.
	var txs []tx
	transmitted := make([]bool, st.n+1) // target may name node N (index n)
	for c := 0; c < maxSlots && done < cfg.M; c++ {
		// Line 2-4: inject packet p = c at the source.
		if c < cfg.M {
			st.deliver(c, 0, c)
		}
		txs = txs[:0]
		// Lines 5-9: each node 0..N-1 transmits f(i, c).
		for i := 0; i < st.n; i++ {
			pkt := st.choosePacket(i, c)
			if pkt < 0 {
				continue
			}
			to := st.target(i, c)
			if to == i {
				continue // degenerate offset on non-power-of-two N
			}
			txs = append(txs, tx{from: i, to: to, packet: pkt})
		}
		// Detect type-2 slots: a node that both transmits and receives.
		for _, t := range txs {
			transmitted[t.from] = true
		}
		type2 := false
		for _, t := range txs {
			if transmitted[t.to] {
				type2 = true
				break
			}
		}
		for _, t := range txs {
			transmitted[t.from] = false
		}
		if type2 {
			res.Type2Slots++
		}
		// Apply all receptions simultaneously (end of slot c → usable at c+1).
		for _, t := range txs {
			res.Transmissions++
			if st.has[t.packet][t.to] {
				res.DuplicateReceptions++
				continue
			}
			st.deliver(t.packet, t.to, c)
		}
		// Record completions: packets with no missing nodes are complete at
		// the beginning of slot c+1.
		for p := 0; p < cfg.M; p++ {
			if res.CompletionSlot[p] == -1 && p <= c && st.remain[p] == 0 {
				res.CompletionSlot[p] = c + 1
				res.Waitings[p] = c + 1 - p
				done++
				if c+1 > res.TotalSlots {
					res.TotalSlots = c + 1
				}
			}
		}
	}
	res.Completed = done == cfg.M
	res.HalfDuplexSlots = res.TotalSlots + res.Type2Slots
	if !res.Completed {
		return res, fmt.Errorf("matrixflood: %d/%d packets incomplete after %d slots", cfg.M-done, cfg.M, maxSlots)
	}
	return res, nil
}

func newState(cfg Config) *state {
	st := &state{
		cfg:     cfg,
		n:       cfg.N,
		total:   cfg.N + 1,
		hopBits: hopBits(cfg.N),
	}
	st.has = make([][]bool, cfg.M)
	st.recvSlot = make([][]int, cfg.M)
	st.remain = make([]int, cfg.M)
	for p := range st.has {
		st.has[p] = make([]bool, st.total)
		st.recvSlot[p] = make([]int, st.total)
		for i := range st.recvSlot[p] {
			st.recvSlot[p][i] = -1
		}
		st.remain[p] = st.total
	}
	return st
}

// hopBits returns n such that the doubling offsets 2^0..2^(n-1) cover all
// hop distances on the N-cycle; for the paper's N = 2^n assumption this is
// exactly log2(N).
func hopBits(n int) int {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// deliver marks node holding packet p from slot c on.
func (st *state) deliver(p, node, c int) {
	if st.has[p][node] {
		return
	}
	st.has[p][node] = true
	st.recvSlot[p][node] = c
	st.remain[p]--
}

// choosePacket returns f(i, c): the packet node i should transmit at slot
// c, or -1 for NIL.
func (st *state) choosePacket(i, c int) int {
	best := -1
	bestSlot := -1
	for p := 0; p < st.cfg.M; p++ {
		if !st.has[p][i] || st.recvSlot[p][i] > c {
			continue
		}
		// The expiry rule is the node's only way to retire a packet: a
		// sensor cannot observe global completion, so (exactly as the
		// paper argues) it may retransmit a packet the whole network
		// already holds until the packet's expired time passes.
		if !st.cfg.DisableExpiry && c >= analysis.ExpiredTime(p, st.n) {
			continue
		}
		switch st.cfg.Policy {
		case MostRecentFirst:
			// Most recent reception wins; ties (same slot) prefer the newer
			// packet index.
			if st.recvSlot[p][i] > bestSlot || (st.recvSlot[p][i] == bestSlot && p > best) {
				best, bestSlot = p, st.recvSlot[p][i]
			}
		case FIFOPacket:
			if best == -1 {
				best = p
			}
		}
	}
	return best
}

// target implements the dissemination rule of Algorithm 1 line 7.
func (st *state) target(i, c int) int {
	offset := 1 << (c % st.hopBits)
	t := (offset + i) % st.n
	if t == 0 {
		return st.n // "If ... is 0, the packet is delivered to node N."
	}
	return t
}

// Trace records the full possession matrix per compact slot, for rendering
// the Fig. 3 example.
type Trace struct {
	// Slots[c][p][node] reports possession of packet p by node at the
	// beginning of compact slot c.
	Slots  [][][]bool
	Result Result
}

// RunTrace executes Algorithm 1 while capturing the possession matrix at
// the beginning of every compact slot up to and including completion.
func RunTrace(cfg Config) (Trace, error) {
	// Re-run with instrumentation: simplest correct approach is to rerun
	// the exact state machine, snapshotting before each slot.
	if cfg.N < 1 || cfg.M < 1 {
		return Trace{}, fmt.Errorf("matrixflood: invalid trace config N=%d M=%d", cfg.N, cfg.M)
	}
	res, err := Run(cfg)
	if err != nil {
		return Trace{Result: res}, err
	}
	st := newState(cfg)
	tr := Trace{Result: res}
	for c := 0; c <= res.TotalSlots; c++ {
		if c < cfg.M {
			st.deliver(c, 0, c)
		}
		snap := make([][]bool, cfg.M)
		for p := range snap {
			snap[p] = append([]bool(nil), st.has[p]...)
		}
		tr.Slots = append(tr.Slots, snap)
		if c == res.TotalSlots {
			break
		}
		type tx struct{ from, to, packet int }
		var txs []tx
		for i := 0; i < st.n; i++ {
			pkt := st.choosePacket(i, c)
			if pkt < 0 {
				continue
			}
			to := st.target(i, c)
			if to == i {
				continue
			}
			txs = append(txs, tx{i, to, pkt})
		}
		for _, t := range txs {
			st.deliver(t.packet, t.to, c)
		}
	}
	return tr, nil
}

// ExpectedOriginalDelay converts a compact-time waiting count into the
// expected original-time delay under the uniform waiting distribution of
// Theorem 1's proof: E[FDL | FWL] = T/2 × FWL.
func ExpectedOriginalDelay(compactWaitings int, period int) float64 {
	if period < 1 {
		panic("matrixflood: period must be >= 1")
	}
	if compactWaitings < 0 {
		panic("matrixflood: negative waiting count")
	}
	return float64(period) / 2 * float64(compactWaitings)
}

package matrixflood_test

import (
	"fmt"

	"ldcflood/internal/matrixflood"
)

// Algorithm 1 on the paper's Fig. 3 instance: N=4 sensors, M=2 packets.
// Packet 0 completes at the single-packet limit (3 compact slots); packet 1
// finishes within its Table I bound.
func ExampleRun() {
	res, err := matrixflood.Run(matrixflood.Config{N: 4, M: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("completions:", res.CompletionSlot)
	fmt.Println("waitings:", res.Waitings)
	fmt.Println("type-2 slots:", res.Type2Slots)
	// Output:
	// completions: [3 4]
	// waitings: [3 3]
	// type-2 slots: 2
}

// The general-N scheduler serves the Theorem 2 regime (no power-of-two
// assumption): a single packet still completes in exactly ⌈log2(1+N)⌉
// compact slots.
func ExampleRunGeneral() {
	res, err := matrixflood.RunGeneral(matrixflood.Config{N: 298, M: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("slots:", res.TotalSlots)
	// Output:
	// slots: 9
}

package rngutil

import "time"

// Jitter deterministically scales d by a factor in [0.5, 1.0) derived
// from key via SplitMix64, returning 0 for d <= 0. It de-synchronizes
// herds — simultaneous retry or lease-requeue backoffs keyed by job or
// chunk index spread out instead of stampeding together — without
// introducing any machine- or schedule-dependent randomness: the same
// (d, key) always yields the same delay, so batch output and replay
// stay deterministic. Used by runner.Options.RetryBackoff and the lease
// manager's requeue backoff.
func Jitter(d time.Duration, key uint64) time.Duration {
	if d <= 0 {
		return 0
	}
	st := key
	z := splitMix64(&st)
	// Map the top 53 bits to [0, 1), then squeeze into [0.5, 1.0).
	frac := float64(z>>11) / (1 << 53)
	return time.Duration(float64(d) * (0.5 + frac/2))
}

package rngutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide too often: %d/100", same)
	}
}

func TestSubStreamsIndependent(t *testing.T) {
	root := New(7)
	a := root.Sub(1)
	b := root.Sub(2)
	a2 := New(7).Sub(1)
	for i := 0; i < 100; i++ {
		va, vb := a.Uint64(), b.Uint64()
		if va == vb {
			t.Fatalf("sub-streams 1 and 2 coincide at step %d", i)
		}
		if va != a2.Uint64() {
			t.Fatalf("Sub(1) not reproducible at step %d", i)
		}
	}
}

func TestSubDoesNotConsumeParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Sub(5)
	_ = a.SubName("x")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Sub/SubName consumed parent randomness")
		}
	}
}

func TestSubNameStable(t *testing.T) {
	a := New(3).SubName("loss")
	b := New(3).SubName("loss")
	c := New(3).SubName("schedule")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SubName not deterministic")
	}
	if New(3).SubName("loss").Uint64() == c.Uint64() {
		t.Fatal("different names produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for n := 1; n <= 10; n++ {
		seen := make(map[int]bool)
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("Intn(%d) did not hit all values in 1000 draws: %d", n, len(seen))
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange out of range: %d", v)
		}
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d", got)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(23)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(8)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.125) > 0.01 {
			t.Fatalf("bucket %d frequency %v far from 1/8", i, frac)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(29)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(31)
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("Norm variance %v", variance)
	}
}

func TestNormMeanStd(t *testing.T) {
	r := New(37)
	if v := r.NormMeanStd(4.5, 0); v != 4.5 {
		t.Fatalf("zero-std normal should return mean, got %v", v)
	}
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormMeanStd(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Fatalf("NormMeanStd mean %v", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(41)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean %v, want ~0.5", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(43)
	if v := r.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
	const p = 0.25
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("Geometric returned negative %d", g)
		}
		sum += float64(g)
	}
	want := (1 - p) / p // mean of failures-before-success geometric
	if mean := sum / n; math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(47)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(53)
	counts := make([]int, 5)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[r.Perm(5)[0]]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.2) > 0.015 {
			t.Fatalf("Perm(5)[0]==%d frequency %v", i, frac)
		}
	}
}

func TestChoose(t *testing.T) {
	r := New(59)
	counts := make([]int, 3)
	w := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choose(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		frac := float64(counts[i]) / n
		if math.Abs(frac-want) > 0.01 {
			t.Fatalf("Choose weight %d frequency %v want %v", i, frac, want)
		}
	}
}

func TestChoosePanics(t *testing.T) {
	cases := [][]float64{{0, 0}, {-1, 2}, {}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Choose(%v) did not panic", w)
				}
			}()
			New(1).Choose(w)
		}()
	}
}

func TestZipf(t *testing.T) {
	r := New(71)
	z := r.NewZipf(1.0, 10)
	counts := make([]int, 11)
	const n = 100000
	for i := 0; i < n; i++ {
		rank := z.Rank()
		if rank < 1 || rank > 10 {
			t.Fatalf("rank %d out of range", rank)
		}
		counts[rank]++
	}
	// Monotone decreasing frequency, and rank 1 ≈ 2x rank 2 for s=1.
	for i := 2; i <= 10; i++ {
		if counts[i] > counts[i-1]+n/100 {
			t.Fatalf("rank %d (%d) more popular than rank %d (%d)", i, counts[i], i-1, counts[i-1])
		}
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if math.Abs(ratio-2) > 0.2 {
		t.Fatalf("rank1/rank2 = %v, want ~2 for s=1", ratio)
	}
	// s=0 is uniform.
	u := New(73).NewZipf(0, 4)
	uc := make([]int, 5)
	for i := 0; i < 40000; i++ {
		uc[u.Rank()]++
	}
	for rank := 1; rank <= 4; rank++ {
		if math.Abs(float64(uc[rank])/10000-1) > 0.05 {
			t.Fatalf("s=0 rank %d frequency %d not uniform", rank, uc[rank])
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(1)
	for i, f := range []func(){
		func() { r.NewZipf(1, 0) },
		func() { r.NewZipf(-1, 5) },
		func() { r.NewZipf(math.NaN(), 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestQuickUint64nInRange(t *testing.T) {
	r := New(61)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: streams derived with the same key from equal-seed parents agree.
func TestQuickSubReproducible(t *testing.T) {
	f := func(seed, key uint64) bool {
		a := New(seed).Sub(key)
		b := New(seed).Sub(key)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: shuffling preserves the multiset of elements.
func TestQuickShufflePreservesElements(t *testing.T) {
	r := New(67)
	f := func(xs []int) bool {
		orig := make(map[int]int)
		for _, x := range xs {
			orig[x]++
		}
		cp := append([]int(nil), xs...)
		r.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
		got := make(map[int]int)
		for _, x := range cp {
			got[x]++
		}
		if len(orig) != len(got) {
			return false
		}
		for k, v := range orig {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func BenchmarkSub(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Sub(uint64(i))
	}
}

func TestSubValue2Deterministic(t *testing.T) {
	root := New(11)
	a := root.SubValue2(3, 9)
	b := root.SubValue2(3, 9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("SubValue2 with equal keys diverged at step %d", i)
		}
	}
}

func TestSubValue2DoesNotConsumeParent(t *testing.T) {
	a := New(5)
	b := New(5)
	_ = a.SubValue2(1, 2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("SubValue2 consumed parent randomness (step %d)", i)
		}
	}
}

// TestSubValue2PairsDistinct exhaustively checks a small key grid: every
// ordered pair — including the transposes — must yield a distinct state,
// and none may collide with the single-key SubValue streams of either key.
func TestSubValue2PairsDistinct(t *testing.T) {
	root := New(99)
	seen := map[[4]uint64]string{}
	note := func(s Stream, label string) {
		if prev, ok := seen[s.s]; ok {
			t.Fatalf("state collision: %s vs %s", label, prev)
		}
		seen[s.s] = label
	}
	keys := []uint64{0, 1, 2, 3, 63, 64, 1 << 32, 1<<62 - 1, 1 << 62, 1 << 63, ^uint64(0)}
	for _, k1 := range keys {
		for _, k2 := range keys {
			note(root.SubValue2(k1, k2), "pair")
		}
	}
	// Single-key streams must not alias the pair streams either. SubValue's
	// own keyspace is 63 bits (see its doc comment), so restrict the singles
	// to keys that are distinct modulo 2^63.
	for _, k := range []uint64{0, 1, 2, 3, 63, 64, 1 << 32, 1<<62 - 1, 1 << 62} {
		note(root.SubValue(k), "single")
	}
}

// TestSubValueTopBitAliasing pins SubValue's documented keyspace limit:
// the top key bit cancels in the mixing, so keys must be distinct modulo
// 2^63. The identity below is load-bearing — key allocators (the sharded
// engine's stream tree) rely on it staying exactly this way, and the
// mixing constants cannot change without invalidating committed baselines.
func TestSubValueTopBitAliasing(t *testing.T) {
	root := New(123)
	for _, k := range []uint64{0, 1, 7, 1 << 20, 1<<62 - 5} {
		a := root.SubValue(k)
		b := root.SubValue(k ^ 1<<63)
		if a.s != b.s {
			t.Fatalf("SubValue(%d) no longer aliases SubValue(%d): the mixing changed", k, k^1<<63)
		}
	}
	// SubValue2 must NOT inherit the aliasing.
	p := root.SubValue2(0, 0)
	q := root.SubValue2(1<<63, 0)
	r2 := root.SubValue2(0, 1<<63)
	if p.s == q.s || p.s == r2.s {
		t.Fatal("SubValue2 aliases the top key bit")
	}
}

func TestSubValue2OrderSensitive(t *testing.T) {
	root := New(4)
	a := root.SubValue2(10, 20)
	b := root.SubValue2(20, 10)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("transposed pair streams coincide too often: %d/100", same)
	}
}

func TestSubValue2Uniform(t *testing.T) {
	// First draw of many keyed streams should look uniform: check the mean
	// of the first Float64 across a key sweep.
	root := New(8)
	sum := 0.0
	const nkeys = 20000
	for k := uint64(0); k < nkeys; k++ {
		s := root.SubValue2(k, k*k+1)
		sum += s.Float64()
	}
	mean := sum / nkeys
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("first-draw mean across keyed pair streams = %f, want ~0.5", mean)
	}
}

// TestPairFloat64MatchesSubValue2 pins PairFloat64 to its documented
// identity: the first Float64 of the full SubValue2 sub-stream. Keyed
// baselines (the sharded planners' contention draws) depend on the two
// derivations never diverging.
func TestPairFloat64MatchesSubValue2(t *testing.T) {
	root := New(42)
	keys := []uint64{0, 1, 2, 63, 1 << 32, 1 << 62, 1 << 63, ^uint64(0)}
	for _, k1 := range keys {
		for _, k2 := range keys {
			sub := root.SubValue2(k1, k2)
			want := sub.Float64()
			if got := root.PairFloat64(k1, k2); got != want {
				t.Fatalf("PairFloat64(%d, %d) = %v, want SubValue2 first draw %v", k1, k2, got, want)
			}
		}
	}
}

// TestPairFloat64DoesNotConsumeParent mirrors the SubValue2 guarantee.
func TestPairFloat64DoesNotConsumeParent(t *testing.T) {
	a := New(5)
	b := New(5)
	_ = a.PairFloat64(1, 2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("PairFloat64 consumed parent randomness (step %d)", i)
		}
	}
}

// TestPairFloat64Uniform sweeps a key grid and checks the draws stay in
// [0, 1) with a plausible mean.
func TestPairFloat64Uniform(t *testing.T) {
	root := New(8)
	sum := 0.0
	const nkeys = 20000
	for k := uint64(0); k < nkeys; k++ {
		u := root.PairFloat64(k, k*k+1)
		if u < 0 || u >= 1 {
			t.Fatalf("PairFloat64 out of range: %v", u)
		}
		sum += u
	}
	mean := sum / nkeys
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean across keyed pair draws = %f, want ~0.5", mean)
	}
}

// Package rngutil provides deterministic, splittable pseudo-random number
// streams for reproducible simulation experiments.
//
// The core type is Stream, a xoshiro256** generator. Streams are cheap to
// create and can be split into statistically independent sub-streams keyed
// by integers or strings (Sub, SubName). Keyed splitting lets every entity
// in a simulation (node, link, packet) own its private stream derived from
// one experiment seed, so results do not depend on the order in which
// entities consume randomness.
package rngutil

import (
	"math"
	"math/bits"
)

// Stream is a xoshiro256** pseudo-random generator. The zero value is not
// usable; construct with New or by splitting an existing stream.
type Stream struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to seed xoshiro state and to mix split keys, per the
// recommendation of the xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from the given seed. Distinct seeds yield
// independent-looking streams; the same seed always yields the same stream.
func New(seed uint64) *Stream {
	st := seed
	var r Stream
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x8764000b33c5e883
	}
	return &r
}

// Uint64 returns the next 64 random bits.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Sub returns a new independent stream derived from r's seed material and
// the integer key. It does not consume randomness from r, so the set of
// sub-streams obtained is independent of how much r itself has been used
// after construction is irrelevant: Sub depends on r's current state, so
// derive all sub-streams up front for strict reproducibility.
func (r *Stream) Sub(key uint64) *Stream {
	out := r.SubValue(key)
	return &out
}

// SubValue is Sub returning the derived stream by value, for hot paths
// that derive a fresh keyed stream per entity per step (the sharded
// engine derives one per receiver per slot) and cannot afford a heap
// allocation each time. Derivation only reads r's state, so concurrent
// SubValue calls on a shared parent are safe as long as nothing mutates
// the parent concurrently.
//
// The effective keyspace is 63 bits: the mixing cancels the top key bit,
// so SubValue(k) == SubValue(k ^ 1<<63) for every k. Callers must keep
// their keys distinct modulo 2^63 (all in-tree callers use small
// enumeration keys). The constant cannot change without invalidating
// every committed sharded-run baseline; SubValue2 avoids the aliasing.
func (r *Stream) SubValue(key uint64) Stream {
	st := r.s[0] ^ bits.RotateLeft64(r.s[1], 13) ^ (key * 0x9e3779b97f4a7c15)
	st ^= key + 0x6a09e667f3bcc909
	var out Stream
	for i := range out.s {
		out.s[i] = splitMix64(&st)
	}
	if out.s[0]|out.s[1]|out.s[2]|out.s[3] == 0 {
		out.s[0] = 0x41c64e6d
	}
	return out
}

// SubValue2 derives a stream keyed by an ordered pair of integers in a
// single mixing pass, equivalent in spirit to r.SubValue(k1).SubValue(k2)
// at half the cost. Hot paths that key one draw per entity pair — the
// sharded engine's per-(slot, receiver, sender) protocol draws — batch
// their derivation through this instead of chaining two splits. The pair
// is ordered: SubValue2(a, b) and SubValue2(b, a) are independent streams.
// Like SubValue it only reads r's state, so concurrent calls on a shared
// parent are safe.
//
// Unlike SubValue, each key is passed through a full SplitMix64 avalanche
// before entering the state, so there is no structural aliasing anywhere
// in the 128-bit pair space.
func (r *Stream) SubValue2(k1, k2 uint64) Stream {
	h1, h2 := k1, ^k2
	st := r.s[0] ^ bits.RotateLeft64(r.s[1], 13) ^ splitMix64(&h1)
	st += splitMix64(&h2)
	var out Stream
	for i := range out.s {
		out.s[i] = splitMix64(&st)
	}
	if out.s[0]|out.s[1]|out.s[2]|out.s[3] == 0 {
		out.s[0] = 0x41c64e6d
	}
	return out
}

// PairFloat64 returns the single uniform float64 in [0, 1) keyed by an
// ordered integer pair under this stream — exactly the first Float64 of
// the SubValue2(k1, k2) sub-stream, without materializing it. The
// xoshiro256** output function reads only the state's second word, so the
// derivation needs two SplitMix64 rounds of the mixed key state instead
// of four plus a state update. Hot paths that consume exactly one variate
// per entity pair (the sharded planners' per-(receiver, sender)
// contention draws and per-sender defer decisions) use this; consumers
// needing more than one draw must take the full SubValue2 stream.
func (r *Stream) PairFloat64(k1, k2 uint64) float64 {
	h1, h2 := k1, ^k2
	st := r.s[0] ^ bits.RotateLeft64(r.s[1], 13) ^ splitMix64(&h1)
	st += splitMix64(&h2)
	_ = splitMix64(&st) // out.s[0]; the output function never reads it
	s1 := splitMix64(&st)
	return float64(bits.RotateLeft64(s1*5, 7)*9>>11) / (1 << 53)
}

// SubName returns a sub-stream keyed by a string, for named components
// ("topology", "schedule", "loss", ...).
func (r *Stream) SubName(name string) *Stream {
	// FNV-1a over the name, then integer split.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return r.Sub(h)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rngutil: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rngutil: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rngutil: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability p. Out-of-range p is clamped to [0,1].
func (r *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a standard normal variate (Box-Muller; one value per call,
// the pair's second half is discarded to keep the stream's consumption
// pattern simple and splittable).
func (r *Stream) Norm() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// NormMeanStd returns a normal variate with the given mean and standard
// deviation. A non-positive std returns mean.
func (r *Stream) NormMeanStd(mean, std float64) float64 {
	if std <= 0 {
		return mean
	}
	return mean + std*r.Norm()
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rngutil: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success (support {0, 1, 2, ...}). It panics unless 0 < p <= 1.
func (r *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rngutil: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(log(U)/log(1-p)).
	for {
		u := r.Float64()
		if u > 0 {
			return int(math.Floor(math.Log(u) / math.Log(1-p)))
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates). It panics if n < 0.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rngutil: Shuffle with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples ranks 1..n with probability proportional to 1/rank^s. It
// precomputes the CDF at construction, so sampling is O(log n). Use it for
// skewed workload generation (popular packets, hot spots).
type Zipf struct {
	cdf []float64
	rng *Stream
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s >= 0
// (s = 0 is uniform). It panics if n <= 0 or s < 0.
func (r *Stream) NewZipf(s float64, n int) *Zipf {
	if n <= 0 {
		panic("rngutil: Zipf needs n > 0")
	}
	if s < 0 || math.IsNaN(s) {
		panic("rngutil: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += math.Pow(float64(i), -s)
		cdf[i-1] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Rank draws a rank in [1, n].
func (z *Zipf) Rank() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Choose returns a uniformly random element index of a slice of length n
// weighted by weights (len(weights) == n, all non-negative, not all zero).
// It panics on invalid input.
func (r *Stream) Choose(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rngutil: Choose with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rngutil: Choose with zero total weight")
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

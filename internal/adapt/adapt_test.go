package adapt

import (
	"testing"

	"ldcflood/internal/flood"
	"ldcflood/internal/rngutil"
	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
	"ldcflood/internal/topology"
)

func TestNewControllerValidation(t *testing.T) {
	cases := []struct {
		target            int64
		minP, maxP, relax int
	}{
		{0, 5, 100, 2},
		{100, 0, 100, 2},
		{100, 50, 10, 2},
		{100, 5, 100, 0},
	}
	for i, c := range cases {
		if _, err := NewController(c.target, c.minP, c.maxP, c.relax); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if _, err := NewController(200, 5, 100, 2); err != nil {
		t.Fatal(err)
	}
}

func TestStaleness(t *testing.T) {
	g := topology.Line(3, 1)
	var captured *sim.World
	p := &sim.FuncProtocol{
		ResetFunc: func(w *sim.World) { captured = w },
	}
	scheds := []*schedule.Schedule{schedule.AlwaysOn(), schedule.AlwaysOn(), schedule.AlwaysOn()}
	// Silent protocol: after a few slots, node 1 is missing packet 0 whose
	// age equals the elapsed time.
	if _, err := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: p,
		M: 1, Coverage: 1, Seed: 1, MaxSlots: 5,
	}); err != nil {
		t.Fatal(err)
	}
	if s := Staleness(captured, 0); s != 0 {
		t.Fatalf("source staleness %d, want 0", s)
	}
	if s := Staleness(captured, 1); s <= 0 {
		t.Fatalf("starving node staleness %d, want > 0", s)
	}
}

func TestRescheduleKeepsPhase(t *testing.T) {
	s := schedule.NewSingleSlot(40, 27)
	r := reschedule(s, 10)
	if r.Period() != 10 || r.ActiveSlots()[0] != 7 {
		t.Fatalf("rescheduled to %v", r)
	}
}

func TestMeanDuty(t *testing.T) {
	scheds := []*schedule.Schedule{
		schedule.NewSingleSlot(10, 0), // 0.1
		schedule.NewSingleSlot(20, 0), // 0.05
	}
	if got := MeanDuty(scheds); got < 0.075-1e-12 || got > 0.075+1e-12 {
		t.Fatalf("MeanDuty = %v", got)
	}
	if MeanDuty(nil) != 0 {
		t.Fatal("empty table should be 0")
	}
}

// The headline behaviour: under continuous traffic the controller tightens
// starving nodes; once traffic stops, nodes relax toward MaxPeriod —
// delay target met with less energy than a statically tight network.
func TestControllerAdaptsBothWays(t *testing.T) {
	g := topology.GreenOrbs(2)
	n := g.N()
	ctrl, err := NewController(100, 5, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := flood.New("dbao")
	// Start everyone extremely lazy (period 200 ≈ 0.5% duty).
	scheds := schedule.AssignUniform(n, 200, rngutil.New(3).SubName("schedule"))
	res, err := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: p,
		M: 10, Coverage: 0.99, Seed: 3,
		Adapt: ctrl.Adapt, AdaptEvery: 50, MaxSlots: 3_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("adaptive run incomplete")
	}
	if ctrl.Adaptations == 0 {
		t.Fatal("controller never adapted")
	}
	// Compare with the static lazy network: adaptation must be much
	// faster.
	pStatic, _ := flood.New("dbao")
	static, err := sim.Run(sim.Config{
		Graph: g, Schedules: schedule.AssignUniform(n, 200, rngutil.New(3).SubName("schedule")),
		Protocol: pStatic, M: 10, Coverage: 0.99, Seed: 3, MaxSlots: 3_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if static.Completed && res.MeanDelay() >= static.MeanDelay() {
		t.Fatalf("adaptation did not help: %.0f vs static %.0f", res.MeanDelay(), static.MeanDelay())
	}
	// And cheaper than a statically tight network (period 5) in awake
	// time per slot.
	awakeFrac := func(r *sim.Result) float64 {
		var sum int64
		for _, a := range r.AwakeSlotsPerNode {
			sum += a
		}
		return float64(sum) / float64(int64(n)*r.TotalSlots)
	}
	pTight, _ := flood.New("dbao")
	tight, err := sim.Run(sim.Config{
		Graph: g, Schedules: schedule.AssignUniform(n, 5, rngutil.New(3).SubName("schedule")),
		Protocol: pTight, M: 10, Coverage: 0.99, Seed: 3, MaxSlots: 3_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if awakeFrac(res) >= awakeFrac(tight) {
		t.Fatalf("adaptive awake fraction %.3f not below statically tight %.3f",
			awakeFrac(res), awakeFrac(tight))
	}
	t.Logf("delay: adaptive %.0f, static-lazy %.0f (completed=%v), static-tight %.0f; awake: adaptive %.3f vs tight %.3f",
		res.MeanDelay(), static.MeanDelay(), static.Completed, tight.MeanDelay(), awakeFrac(res), awakeFrac(tight))
}

func TestAdaptHookValidation(t *testing.T) {
	g := topology.Line(2, 1)
	scheds := []*schedule.Schedule{schedule.AlwaysOn(), schedule.AlwaysOn()}
	_, err := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: &sim.FuncProtocol{},
		M: 1, Adapt: func(*sim.World, []*schedule.Schedule) {}, AdaptEvery: 0,
	})
	if err == nil {
		t.Fatal("Adapt without AdaptEvery accepted")
	}
	// A hook that nils out a schedule must be rejected at runtime.
	_, err = sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: &sim.FuncProtocol{},
		M: 1, MaxSlots: 10, AdaptEvery: 2,
		Adapt: func(w *sim.World, s []*schedule.Schedule) { s[1] = nil },
	})
	if err == nil {
		t.Fatal("nil schedule from Adapt accepted")
	}
}

func TestAdaptDoesNotMutateCallerSlice(t *testing.T) {
	g := topology.Line(2, 1)
	orig := schedule.NewSingleSlot(10, 3)
	scheds := []*schedule.Schedule{schedule.AlwaysOn(), orig}
	_, err := sim.Run(sim.Config{
		Graph: g, Schedules: scheds, Protocol: &sim.FuncProtocol{},
		M: 1, MaxSlots: 20, AdaptEvery: 5,
		Adapt: func(w *sim.World, s []*schedule.Schedule) {
			s[1] = schedule.AlwaysOn()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if scheds[1] != orig {
		t.Fatal("engine mutated the caller's schedule slice")
	}
}

// Package adapt implements dynamic duty-cycle control in the spirit of
// DutyCon (Wang et al., IWQoS'10 — the paper's reference [22]): instead of
// a fixed network-wide duty cycle, every node adjusts its own period from
// local feedback so that a flooding-delay target is met with as little
// radio-on time as possible. It closes the loop the paper's Section VI
// calls for — "configure the duty cycle length such that the obtained
// networking gains can be maximized" — at run time rather than design
// time.
//
// Attach a Controller to the simulator through sim.Config.Adapt /
// AdaptEvery; it observes each node's staleness (how long it has been
// missing its oldest outstanding packet) and multiplicatively tightens or
// relaxes that node's period with hysteresis.
package adapt

import (
	"fmt"

	"ldcflood/internal/schedule"
	"ldcflood/internal/sim"
)

// Controller is a per-node multiplicative-increase/decrease duty
// controller. The zero value is not usable; construct with NewController.
type Controller struct {
	// TargetStaleness is the delay budget in slots: a node missing a
	// packet older than this tightens (halves) its period.
	TargetStaleness int64
	// MinPeriod / MaxPeriod bound each node's period.
	MinPeriod, MaxPeriod int
	// RelaxAfter is the number of consecutive adaptation epochs a node
	// must be fully caught up before it relaxes (doubles) its period —
	// the hysteresis preventing oscillation.
	RelaxAfter int

	caughtUp []int // consecutive caught-up epochs per node
	// Adaptations counts period changes (diagnostics).
	Adaptations int
}

// NewController validates and builds a controller.
func NewController(targetStaleness int64, minPeriod, maxPeriod, relaxAfter int) (*Controller, error) {
	if targetStaleness < 1 {
		return nil, fmt.Errorf("adapt: target staleness %d must be >= 1", targetStaleness)
	}
	if minPeriod < 1 || maxPeriod < minPeriod {
		return nil, fmt.Errorf("adapt: bad period bounds [%d, %d]", minPeriod, maxPeriod)
	}
	if relaxAfter < 1 {
		return nil, fmt.Errorf("adapt: relaxAfter %d must be >= 1", relaxAfter)
	}
	return &Controller{
		TargetStaleness: targetStaleness,
		MinPeriod:       minPeriod,
		MaxPeriod:       maxPeriod,
		RelaxAfter:      relaxAfter,
	}, nil
}

// Staleness returns how many slots node has been waiting for its oldest
// missing injected packet (0 if it holds everything injected so far).
func Staleness(w *sim.World, node int) int64 {
	var worst int64
	for p := 0; p < w.Injected(); p++ {
		if !w.Has(p, node) {
			if age := w.Now() - w.InjectSlot(p); age > worst {
				worst = age
			}
		}
	}
	return worst
}

// Adapt implements the sim.Config.Adapt hook.
func (c *Controller) Adapt(w *sim.World, schedules []*schedule.Schedule) {
	if c.caughtUp == nil {
		c.caughtUp = make([]int, len(schedules))
	}
	for i, s := range schedules {
		if i == 0 {
			continue // the source does not duty-cycle its receptions
		}
		period := s.Period()
		switch {
		case Staleness(w, i) > c.TargetStaleness:
			c.caughtUp[i] = 0
			if period > c.MinPeriod {
				newPeriod := period / 2
				if newPeriod < c.MinPeriod {
					newPeriod = c.MinPeriod
				}
				schedules[i] = reschedule(s, newPeriod)
				c.Adaptations++
			}
		case !w.NeedsAnything(i):
			c.caughtUp[i]++
			if c.caughtUp[i] >= c.RelaxAfter && period < c.MaxPeriod {
				newPeriod := period * 2
				if newPeriod > c.MaxPeriod {
					newPeriod = c.MaxPeriod
				}
				schedules[i] = reschedule(s, newPeriod)
				c.caughtUp[i] = 0
				c.Adaptations++
			}
		default:
			c.caughtUp[i] = 0
		}
	}
}

// reschedule keeps the node's wake phase as stable as possible while
// changing the period: the first active slot is reduced modulo the new
// period, so local synchronization estimates degrade gracefully.
func reschedule(s *schedule.Schedule, newPeriod int) *schedule.Schedule {
	slot := s.ActiveSlots()[0] % newPeriod
	return schedule.NewSingleSlot(newPeriod, slot)
}

// MeanDuty returns the average duty ratio across a schedule table — the
// energy-side summary to pair with the delay achieved.
func MeanDuty(schedules []*schedule.Schedule) float64 {
	if len(schedules) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range schedules {
		sum += s.DutyRatio()
	}
	return sum / float64(len(schedules))
}

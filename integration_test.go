package ldcflood

// Repository-level acceptance tests: build and run every example binary
// and spot-check its output, so a release never ships with a broken
// quickstart. Skipped under -short (each exec compiles a binary).

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, path string, wantSubstrings ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	cmd := exec.Command("go", "run", path)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatalf("%s timed out", path)
	}
	if err != nil {
		t.Fatalf("%s failed: %v\n%s", path, err, out)
	}
	text := string(out)
	for _, want := range wantSubstrings {
		if !strings.Contains(text, want) {
			t.Fatalf("%s output missing %q:\n%s", path, want, text)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "./examples/quickstart",
		"mean flooding delay:", "packet  0:", "packet 19:")
}

func TestExampleTheory(t *testing.T) {
	runExample(t, "./examples/theory",
		"Lemma 2", "knee at M = m = 11", "Table I bounds")
}

func TestExampleDutycycle(t *testing.T) {
	runExample(t, "./examples/dutycycle",
		"networking gain peaks", "lifetime")
}

func TestExampleProtocols(t *testing.T) {
	runExample(t, "./examples/protocols",
		"OPT", "DBAO", "OF", "Naive", "mean delay")
}

func TestExampleCrosslayer(t *testing.T) {
	runExample(t, "./examples/crosslayer",
		"joint optimum", "optimizer refinement", "delay budget")
}

func TestExampleTracing(t *testing.T) {
	runExample(t, "./examples/tracing",
		"trace:", "busiest transmitters", "packet timeline")
}

func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests are skipped in -short mode")
	}
	cases := [][]string{
		{"run", "./cmd/floodsim", "-protocol", "opt", "-duty", "0.2", "-m", "3"},
		{"run", "./cmd/figures", "-fig", "fig5,table1"},
		{"run", "./cmd/topogen", "-type", "grid", "-rows", "3", "-cols", "3", "-stats"},
		{"run", "./cmd/dutyopt", "-analytic", "-m", "5"},
		{"run", "./cmd/sweep", "-protocols", "opt", "-duties", "0.2", "-seeds", "1", "-m", "3"},
	}
	for _, args := range cases {
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			t.Fatalf("go %v failed: %v\n%s", args, err, out)
		}
	}
}
